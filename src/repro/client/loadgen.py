"""Event-driven multi-client HTTP load generator (paper Section 6).

The paper's client software is an event-driven program that simulates
multiple HTTP clients, each making requests as fast as the server can handle
them.  :class:`LoadGenerator` reproduces that: it multiplexes ``num_clients``
simulated clients over one ``selectors`` loop in the calling thread, each
client issuing requests drawn from a workload (any callable returning the
next path), optionally over persistent connections, until a wall-clock
duration or request budget is exhausted.

The result object reports the two metrics the paper plots: total output
bandwidth (Mb/s) and connection (request) rate (requests/second).

A misbehaving-client mode (``slow_writers``/``slow_readers``) attaches
slowloris writers and stalled readers alongside the real load, so the
slow-client-hardening benchmarks can measure whether the server's
progress-based deadlines keep the fast clients' throughput intact while
the attackers are being reaped.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.client.latency import LatencyHistogram, exponential_arrivals

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


@dataclass
class ClientResult:
    """Per-simulated-client counters."""

    requests_completed: int = 0
    bytes_received: int = 0
    errors: int = 0
    connects: int = 0
    not_modified: int = 0
    #: Status-class counters: 2xx successes, and the 206 subset of them.
    #: Kept separately so a multi-process run's merged counters can be
    #: cross-checked exactly against the per-worker sums and the server's
    #: own response-class counters.
    responses_2xx: int = 0
    responses_206: int = 0
    #: Misbehaving-client counters (zero for well-behaved clients): times
    #: the server closed the connection on a deadline, and 408 responses
    #: received by a slowloris writer before the close.
    reaped: int = 0
    rejected_408: int = 0
    #: Overload counters: 503 responses received (admission shedding —
    #: counted by both well-behaved clients and connection flooders, never
    #: as completed requests), and closed-loop retries issued after a shed.
    rejected_503: int = 0
    retries: int = 0
    #: Chaos-mode counter: connections reset mid-exchange that were retried
    #: instead of recorded as errors (``retry_resets``).
    connection_resets: int = 0
    #: Streaming counters: responses completed with
    #: ``Transfer-Encoding: chunked`` framing (the chunked-mix requests),
    #: and Server-Sent Events received by an SSE subscriber client.
    chunked_responses: int = 0
    sse_events: int = 0


@dataclass
class LoadResult:
    """Aggregate outcome of one load-generation run.

    ``bandwidth_mbps`` and ``request_rate`` are the quantities plotted on
    the paper's figures (output bandwidth in megabits/second and connection
    rate in requests/second).
    """

    requests_completed: int = 0
    bytes_received: int = 0
    errors: int = 0
    connects: int = 0
    not_modified: int = 0
    responses_2xx: int = 0
    responses_206: int = 0
    reaped: int = 0
    rejected_408: int = 0
    rejected_503: int = 0
    retries: int = 0
    connection_resets: int = 0
    chunked_responses: int = 0
    sse_events: int = 0
    elapsed: float = 0.0
    per_client: list = field(default_factory=list)
    #: Per-request latency distribution (seconds recorded; read in ms).
    #: Closed loop measures send-start → response-complete; open loop
    #: measures *scheduled arrival* → response-complete, so queueing delay
    #: under overload lands in the tail percentiles instead of vanishing.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: Open-loop accounting: requests dispatched from the arrival
    #: schedule, the total/worst dispatch lateness (seconds a request
    #: waited past its scheduled arrival before a client picked it up),
    #: and the deepest backlog observed.  All zero in closed-loop runs.
    dispatched: int = 0
    lateness_sum: float = 0.0
    lateness_max: float = 0.0
    max_backlog: int = 0

    @property
    def bandwidth_mbps(self) -> float:
        """Output bandwidth observed by the clients, in megabits per second."""
        if self.elapsed <= 0:
            return 0.0
        return (self.bytes_received * 8) / (self.elapsed * 1_000_000)

    @property
    def request_rate(self) -> float:
        """Completed requests per second."""
        if self.elapsed <= 0:
            return 0.0
        return self.requests_completed / self.elapsed

    def to_dict(self) -> dict:
        """Plain-dict summary for logging and experiment tables."""
        return {
            "requests_completed": self.requests_completed,
            "bytes_received": self.bytes_received,
            "errors": self.errors,
            "not_modified": self.not_modified,
            "responses_2xx": self.responses_2xx,
            "responses_206": self.responses_206,
            "reaped": self.reaped,
            "rejected_408": self.rejected_408,
            "rejected_503": self.rejected_503,
            "retries": self.retries,
            "connection_resets": self.connection_resets,
            "chunked_responses": self.chunked_responses,
            "sse_events": self.sse_events,
            "elapsed": self.elapsed,
            "bandwidth_mbps": self.bandwidth_mbps,
            "request_rate": self.request_rate,
            "dispatched": self.dispatched,
            "lateness_sum": self.lateness_sum,
            "lateness_max": self.lateness_max,
            "max_backlog": self.max_backlog,
            "latency": self.latency.summary_ms(),
        }


def _chunked_end(buffer, start: int) -> Optional[int]:
    """Offset one past a complete ``Transfer-Encoding: chunked`` body.

    Walks the chunk framing in ``buffer`` from ``start``; returns ``None``
    while the terminating zero-size chunk has not fully arrived.  The
    servers under test never emit trailers, so the terminator is exactly
    ``0\\r\\n\\r\\n``.
    """
    position = start
    while True:
        line_end = buffer.find(b"\r\n", position)
        if line_end < 0:
            return None
        size_token = bytes(buffer[position:line_end]).split(b";", 1)[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError:
            # Malformed framing never completes; the server close surfaces
            # it as an error through the normal EOF path.
            return None
        position = line_end + 2
        if size == 0:
            return position + 2 if len(buffer) >= position + 2 else None
        if len(buffer) < position + size + 2:
            return None
        position += size + 2


def _dechunk_available(buffer: bytearray, state: dict) -> bytes:
    """Incrementally strip chunk framing from a growing receive buffer.

    ``state`` carries ``position`` (the scan cursor into ``buffer``) and
    ``done`` across calls; returns whatever complete chunk payloads became
    available since the previous call.
    """
    payload = bytearray()
    while not state.get("done"):
        position = state.get("position", 0)
        line_end = buffer.find(b"\r\n", position)
        if line_end < 0:
            break
        size_token = bytes(buffer[position:line_end]).split(b";", 1)[0].strip()
        try:
            size = int(size_token, 16)
        except ValueError:
            state["done"] = True
            break
        data_start = line_end + 2
        if size == 0:
            state["done"] = True
            break
        if len(buffer) < data_start + size + 2:
            break
        payload += buffer[data_start : data_start + size]
        state["position"] = data_start + size + 2
    return bytes(payload)


class _SimClient:
    """State machine for one simulated HTTP client.

    Two operating modes, decided by the generator:

    *closed loop* (the paper's client): the client re-issues a request the
    moment the previous response completes, so offered load adapts to the
    server's speed.

    *open loop*: the client is one slot in a connection pool.  It sits
    :data:`IDLE` until the generator dispatches a scheduled arrival to it,
    serves exactly that one request, and goes idle again — the arrival
    schedule, not the server, decides when requests happen.
    """

    CONNECTING = "connecting"
    SENDING = "sending"
    RECEIVING = "receiving"
    IDLE = "idle"
    DONE = "done"

    def __init__(self, generator: "LoadGenerator", client_id: int):
        self.generator = generator
        self.client_id = client_id
        self.result = ClientResult()
        self.sock: Optional[socket.socket] = None
        self.state = self.DONE
        self._send_buffer = b""
        self._recv_buffer = bytearray()
        self._expected_length: Optional[int] = None
        self._header_parsed = False
        self._body_start = 0
        self._chunked = False
        self._registered_events = 0
        self._path = ""
        self._status = 0
        #: Open-loop: the arrival time this in-flight request was scheduled
        #: for; closed-loop: ``None`` (latency is measured from send start).
        self._scheduled: Optional[float] = None
        self._sent_at = 0.0

    # -- connection management -------------------------------------------------

    def start(self) -> None:
        """Open a connection and issue the first request (closed loop)."""
        self._connect()

    def dispatch(self, scheduled: float) -> None:
        """Issue one request for the arrival scheduled at ``scheduled``.

        Open-loop entry point: reuses the parked keep-alive connection when
        one survives, otherwise connects fresh.
        """
        self._scheduled = scheduled
        if self.sock is None:
            self._connect()
            return
        self._prepare_request()
        self.state = self.SENDING
        self._register(_WRITE)
        self._do_send()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.sock = sock
        self.result.connects += 1
        self.state = self.CONNECTING
        try:
            sock.connect(self.generator.address)
        except BlockingIOError:
            pass
        except OSError:
            self._fail()
            return
        self._prepare_request()
        self._register(_WRITE)

    def _prepare_request(self) -> None:
        shape = self.generator.next_request_shape()
        if shape == "chunked":
            # Chunked-mix slot: hit the streaming endpoint instead of the
            # static workload path; the response arrives with
            # Transfer-Encoding: chunked and no Content-Length.
            path = self.generator.chunked_path
            etag = None
            ranged = False
        else:
            path = self.generator.next_path()
            etag = self.generator.captured_etag(path) if shape == "conditional" else None
            ranged = shape == "ranged"
        self._path = path
        self._send_buffer = self.generator.request_bytes(path, ranged=ranged, etag=etag)
        self._recv_buffer = bytearray()
        self._expected_length = None
        self._header_parsed = False
        self._body_start = 0
        self._chunked = False
        self._status = 0
        self._sent_at = time.monotonic()

    # -- readiness handling ------------------------------------------------------

    def on_ready(self, mask: int) -> None:
        try:
            if mask & _READ and self.state == self.IDLE:
                self._drain_idle()
                return
            if mask & _WRITE and self.state in (self.CONNECTING, self.SENDING):
                self._do_send()
            if mask & _READ and self.state == self.RECEIVING:
                self._do_recv()
        except (ConnectionError, OSError):
            self._fail()

    def _drain_idle(self) -> None:
        """Readability while parked: the server closed (or broke) the
        parked keep-alive connection — e.g. its idle deadline fired.  Drop
        the socket quietly; the next dispatch reconnects.  Not an error:
        no request was in flight."""
        assert self.sock is not None
        try:
            data = self.sock.recv(4096)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._close()

    def _do_send(self) -> None:
        assert self.sock is not None
        self.state = self.SENDING
        while self._send_buffer:
            try:
                sent = self.sock.send(self._send_buffer)
            except (BlockingIOError, InterruptedError):
                return
            self._send_buffer = self._send_buffer[sent:]
        self.state = self.RECEIVING
        self._register(_READ)

    def _do_recv(self) -> None:
        assert self.sock is not None
        while True:
            try:
                data = self.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            if not data:
                # Server closed the connection; if we already had the full
                # response this is just "Connection: close" semantics.
                if self._header_parsed and self._response_complete():
                    self._complete_response(reconnect=True)
                else:
                    self._fail()
                return
            self._recv_buffer.extend(data)
            self.result.bytes_received += len(data)
            self.generator.total_bytes += len(data)
            if not self._header_parsed:
                self._try_parse_header()
            if self._header_parsed and self._response_complete():
                self._complete_response(reconnect=not self.generator.keep_alive)
                return

    def _try_parse_header(self) -> None:
        end = self._recv_buffer.find(b"\r\n\r\n")
        if end < 0:
            return
        header = bytes(self._recv_buffer[:end]).decode("latin-1", "replace")
        self._header_parsed = True
        self._body_start = end + 4
        self._expected_length = 0
        lines = header.split("\r\n")
        status_parts = lines[0].split(" ", 2)
        try:
            self._status = int(status_parts[1]) if len(status_parts) > 1 else 0
        except ValueError:
            self._status = 0
        for line in lines[1:]:
            lowered = line.lower()
            if lowered.startswith("content-length:"):
                try:
                    self._expected_length = int(line.split(":", 1)[1].strip())
                except ValueError:
                    self._expected_length = 0
            elif lowered.startswith("transfer-encoding:") and "chunked" in lowered:
                self._chunked = True
                self._expected_length = None
            elif lowered.startswith("etag:"):
                # Remember the validator so later conditional requests can
                # replay it as If-None-Match.
                self.generator.record_etag(self._path, line.split(":", 1)[1].strip())

    def _response_complete(self) -> bool:
        if self._chunked:
            return _chunked_end(self._recv_buffer, self._body_start) is not None
        if self._expected_length is None:
            return False
        return len(self._recv_buffer) - self._body_start >= self._expected_length

    def _complete_response(self, reconnect: bool) -> None:
        now = time.monotonic()
        if self._status == 503:
            # Admission shedding: not a completed request and not an
            # error — the server explicitly asked us to come back later.
            self._rejected()
            return
        self.result.requests_completed += 1
        self.generator.total_requests += 1
        if self._chunked:
            self.result.chunked_responses += 1
        if 200 <= self._status < 300:
            self.result.responses_2xx += 1
            if self._status == 206:
                self.result.responses_206 += 1
        elif self._status == 304:
            self.result.not_modified += 1
            self.generator.total_not_modified += 1
        # Open loop: latency includes time spent queued past the scheduled
        # arrival, so overload surfaces as queueing delay.  Closed loop:
        # time from send start (connect included for fresh connections).
        start = self._scheduled if self._scheduled is not None else self._sent_at
        self.generator.latency.record(now - start)
        self._scheduled = None
        if self.generator.finished():
            self._close()
            self.state = self.DONE
            return
        if self.generator.open_loop:
            if reconnect:
                self._close()
            self.generator.client_idle(self)
            return
        if self.generator.think_time > 0:
            self._close()
            self.generator.schedule_restart(self, self.generator.think_time)
            return
        if reconnect or self.sock is None:
            self._close()
            self._connect()
        else:
            self._prepare_request()
            self.state = self.SENDING
            self._register(_WRITE)
            self._do_send()

    def _rejected(self) -> None:
        """The server shed this request with a 503.

        Closed loop: back off ``retry_backoff`` seconds and retry — the
        chaos benchmarks count a well-behaved client as *failed* only if
        its request never completes, so a shed followed by a successful
        retry preserves availability.  Open loop: the scheduled arrival is
        consumed (retrying would inflate offered load past the schedule),
        so the shed is only counted.
        """
        self.result.rejected_503 += 1
        self._close()
        self._scheduled = None
        if self.generator.finished():
            self.state = self.DONE
        elif self.generator.open_loop:
            self.generator.client_idle(self)
        else:
            self.result.retries += 1
            self.generator.schedule_restart(self, self.generator.retry_backoff)

    # -- failure and teardown ---------------------------------------------------------

    def _fail(self) -> None:
        if self.generator.retry_resets and not self.generator.open_loop:
            # Chaos mode: a well-behaved client retries an idempotent GET
            # whose connection broke mid-exchange (a shard died under it)
            # instead of recording a hard failure.  The reset is still
            # counted so availability reports can see the churn.
            self.result.connection_resets += 1
            self._close()
            self._scheduled = None
            if self.generator.finished():
                self.state = self.DONE
            else:
                self.result.retries += 1
                self.generator.schedule_restart(self, self.generator.retry_backoff)
            return
        self.result.errors += 1
        self.generator.total_errors += 1
        self._close()
        self._scheduled = None
        if self.generator.finished():
            self.state = self.DONE
        elif self.generator.open_loop:
            # The scheduled arrival this request represented is consumed
            # (counted as an error, not retried): retrying would inflate
            # the offered load beyond the schedule.
            self.generator.client_idle(self)
        else:
            self._connect()

    def _close(self) -> None:
        if self.sock is not None:
            self._unregister()
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    # -- selector plumbing ---------------------------------------------------------------

    def _register(self, events: int) -> None:
        if self.sock is None:
            return
        selector = self.generator.selector
        if self._registered_events == 0:
            selector.register(self.sock, events, self)
        elif events != self._registered_events:
            selector.modify(self.sock, events, self)
        self._registered_events = events

    def _unregister(self) -> None:
        if self.sock is not None and self._registered_events:
            try:
                self.generator.selector.unregister(self.sock)
            except (KeyError, ValueError):
                pass
        self._registered_events = 0


class _SlowClient:
    """A deliberately misbehaving client attached alongside the real load.

    Two modes, matching the two resource-holding attacks the server's
    per-connection deadlines defend against:

    ``writer``
        A slowloris: connects and dribbles an incomplete request head
        ``dribble_bytes`` at a time every ``dribble_interval`` seconds,
        never terminating it.  A hardened server answers ``408`` when its
        header budget expires and closes; the client counts the 408
        (``rejected_408``) and the close (``reaped``), then reconnects.

    ``reader``
        A stalled reader: shrinks its receive buffer, sends one complete
        GET from the workload, then drains the response at only
        ``dribble_bytes`` per interval — far slower than the server
        sends, so the server's transmit stalls.  A hardened server reaps
        it when its write-stall budget expires; the client counts the
        close and reconnects.

    Slow clients never contribute to ``requests_completed``; their job is
    to *hold server resources* so the run shows whether the fast clients'
    throughput survives their presence.
    """

    WRITER = "writer"
    READER = "reader"
    DONE = _SimClient.DONE

    def __init__(self, generator: "LoadGenerator", client_id: int, mode: str):
        self.generator = generator
        self.client_id = client_id
        self.mode = mode
        self.result = ClientResult()
        self.sock: Optional[socket.socket] = None
        self.state = self.DONE
        self._registered_events = 0
        self._script = b""
        self._position = 0
        self._saw_408 = False

    def start(self) -> None:
        self._connect()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        if self.mode == self.READER:
            # A tiny receive buffer makes the kernel push back on the
            # server's send almost immediately, so the stall is visible
            # even for moderate response sizes.
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            except OSError:
                pass
        self.sock = sock
        self.result.connects += 1
        self._saw_408 = False
        self._position = 0
        self.state = self.mode
        try:
            sock.connect(self.generator.address)
        except BlockingIOError:
            pass
        except OSError:
            self.result.errors += 1
            self._close()
            self.state = self.DONE
            return
        host = "%s:%d" % self.generator.address
        if self.mode == self.WRITER:
            # An incomplete head: no terminating blank line, and short
            # enough to stay under any header-size limit, so the only
            # thing that can end it is the server's header deadline.
            self._script = (
                f"GET / HTTP/1.1\r\nHost: {host}\r\nX-Slowloris: "
            ).encode("latin-1") + b"a" * 512
            # Watch for the 408 (and the close that follows it).
            self._register(_READ)
            self.generator.schedule_call(
                self.generator.dribble_interval, self._dribble
            )
        else:
            path = self.generator.next_path()
            self._script = self.generator.request_bytes(path)
            # Send the complete request as soon as the connect finishes,
            # then switch to timer-paced dribble reads.
            self._register(_WRITE)

    # -- readiness and timers ---------------------------------------------------

    def on_ready(self, mask: int) -> None:
        if self.sock is None:
            return
        if mask & _WRITE and self.mode == self.READER:
            try:
                while self._position < len(self._script):
                    self._position += self.sock.send(self._script[self._position:])
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._reaped()
                return
            # Request fully sent: stop listening (a genuinely stalled
            # reader ignores readability) and start the slow drain.
            self._unregister()
            self.generator.schedule_call(
                self.generator.dribble_interval, self._dribble
            )
            return
        if mask & _READ and self.mode == self.WRITER:
            try:
                data = self.sock.recv(4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._reaped()
                return
            if not data:
                self._reaped()
                return
            if not self._saw_408 and b" 408 " in data:
                self._saw_408 = True
                self.result.rejected_408 += 1

    def _dribble(self) -> None:
        """One paced step: a few head bytes out, or a few body bytes in."""
        if self.sock is None or self.state == self.DONE:
            return
        if self.generator.finished():
            return
        if self.mode == self.WRITER:
            chunk = self._script[
                self._position : self._position + self.generator.dribble_bytes
            ]
            if chunk:
                try:
                    self._position += self.sock.send(chunk)
                except (BlockingIOError, InterruptedError):
                    pass
                except OSError:
                    self._reaped()
                    return
        else:
            # recv alone would hide an abortive reap for minutes: the
            # kernel serves the already-buffered bytes before surfacing
            # the reset, and at this drain rate the buffer lasts ages.
            # SO_ERROR reports the pending reset immediately.
            try:
                error = self.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            except OSError:
                error = 1
            if error:
                self._reaped()
                return
            try:
                data = self.sock.recv(self.generator.dribble_bytes)
            except (BlockingIOError, InterruptedError):
                data = None
            except OSError:
                self._reaped()
                return
            if data == b"":
                self._reaped()
                return
        self.generator.schedule_call(self.generator.dribble_interval, self._dribble)

    def _reaped(self) -> None:
        """The server ended the connection: count it and come back for more."""
        self.result.reaped += 1
        self._close()
        if self.generator.finished():
            self.state = self.DONE
        else:
            self._connect()

    # -- teardown and selector plumbing (mirrors _SimClient) --------------------

    def _close(self) -> None:
        if self.sock is not None:
            self._unregister()
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _register(self, events: int) -> None:
        if self.sock is None:
            return
        selector = self.generator.selector
        if self._registered_events == 0:
            selector.register(self.sock, events, self)
        elif events != self._registered_events:
            selector.modify(self.sock, events, self)
        self._registered_events = events

    def _unregister(self) -> None:
        if self.sock is not None and self._registered_events:
            try:
                self.generator.selector.unregister(self.sock)
            except (KeyError, ValueError):
                pass
        self._registered_events = 0


class _FloodClient:
    """A connection flooder attached alongside the real load.

    Models the overload attack the admission-control benchmarks defend
    against: each flooder opens a connection and then simply *holds* it,
    consuming one of the server's connection slots (and a file
    descriptor) while contributing no requests.  An admission-controlled
    server above its high watermark answers ``503 Retry-After`` and
    closes; the flooder counts the 503 (``rejected_503``) and the close
    (``reaped``), waits one ``dribble_interval``, and floods again.  An
    *unprotected* server silently accumulates the held connections until
    its fd limit — which is exactly the contrast the chaos figure plots.

    Flood clients never complete requests; their job is to drive the
    server into (and hold it at) its admission limit so the run shows
    whether well-behaved clients still get served.
    """

    DONE = _SimClient.DONE
    FLOODING = "flooding"

    def __init__(self, generator: "LoadGenerator", client_id: int):
        self.generator = generator
        self.client_id = client_id
        self.result = ClientResult()
        self.sock: Optional[socket.socket] = None
        self.state = self.DONE
        self._registered_events = 0
        self._saw_503 = False

    def start(self) -> None:
        self._connect()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        self.sock = sock
        self.result.connects += 1
        self._saw_503 = False
        self.state = self.FLOODING
        try:
            sock.connect(self.generator.address)
        except BlockingIOError:
            pass
        except OSError:
            # Connect refused outright (listen queue gone, fd pressure on
            # our own side, ...): pace the retry so a dead server does not
            # turn the flooder into a busy loop.
            self.result.errors += 1
            self._close()
            self._retry_later()
            return
        # Hold the connection and watch for the server's verdict: either
        # a 503 + close (admission shedding) or a bare close (fd guard).
        self._register(_READ)

    def on_ready(self, mask: int) -> None:
        if self.sock is None or not mask & _READ:
            return
        try:
            data = self.sock.recv(4096)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._shed()
            return
        if not data:
            self._shed()
            return
        if not self._saw_503 and b" 503 " in data:
            self._saw_503 = True
            self.result.rejected_503 += 1

    def _shed(self) -> None:
        """The server ended the held connection: count it, flood again."""
        self.result.reaped += 1
        self._close()
        self._retry_later()

    def _retry_later(self) -> None:
        if self.generator.finished():
            self.state = self.DONE
            return
        self.generator.schedule_call(self.generator.dribble_interval, self._reflood)

    def _reflood(self) -> None:
        if self.state != self.DONE and self.sock is None:
            if self.generator.finished():
                self.state = self.DONE
            else:
                self._connect()

    # -- teardown and selector plumbing (mirrors _SimClient) --------------------

    def _close(self) -> None:
        if self.sock is not None:
            self._unregister()
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _register(self, events: int) -> None:
        if self.sock is None:
            return
        selector = self.generator.selector
        if self._registered_events == 0:
            selector.register(self.sock, events, self)
        elif events != self._registered_events:
            selector.modify(self.sock, events, self)
        self._registered_events = events

    def _unregister(self) -> None:
        if self.sock is not None and self._registered_events:
            try:
                self.generator.selector.unregister(self.sock)
            except (KeyError, ValueError):
                pass
        self._registered_events = 0


class _SSEClient:
    """A mostly-idle Server-Sent Events subscriber alongside the real load.

    Subscribes to the server's event-stream endpoint once and then just
    listens: de-chunks the response, splits the event stream on blank
    lines, and counts every block carrying a ``data:`` field
    (``sse_events``) — validating the framing end to end while holding a
    mostly-idle connection, the load shape the fig14 streaming benchmark
    measures static latency against.  SSE subscribers never contribute to
    ``requests_completed``; a server-side close ends the subscription for
    the rest of the run.
    """

    DONE = _SimClient.DONE
    SUBSCRIBING = "subscribing"
    SUBSCRIBED = "subscribed"

    def __init__(self, generator: "LoadGenerator", client_id: int):
        self.generator = generator
        self.client_id = client_id
        self.result = ClientResult()
        self.sock: Optional[socket.socket] = None
        self.state = self.DONE
        self._registered_events = 0
        self._send_buffer = b""
        self._recv_buffer = bytearray()
        self._header_parsed = False
        self._chunked = False
        self._status = 0
        self._decode_state: dict = {}
        self._event_buffer = bytearray()

    def start(self) -> None:
        self._connect()

    def _connect(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        self.sock = sock
        self.result.connects += 1
        self.state = self.SUBSCRIBING
        try:
            sock.connect(self.generator.address)
        except BlockingIOError:
            pass
        except OSError:
            self.result.errors += 1
            self._close()
            self.state = self.DONE
            return
        host = "%s:%d" % self.generator.address
        self._send_buffer = (
            f"GET {self.generator.sse_path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Accept: text/event-stream\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        self._register(_WRITE)

    def on_ready(self, mask: int) -> None:
        if self.sock is None:
            return
        try:
            if mask & _WRITE and self.state == self.SUBSCRIBING:
                while self._send_buffer:
                    self._send_buffer = self._send_buffer[
                        self.sock.send(self._send_buffer):
                    ]
                self.state = self.SUBSCRIBED
                self._register(_READ)
            if mask & _READ and self.state == self.SUBSCRIBED:
                self._do_recv()
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._ended()

    def _do_recv(self) -> None:
        assert self.sock is not None
        while True:
            try:
                data = self.sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                return
            if not data:
                self._ended()
                return
            self.result.bytes_received += len(data)
            self.generator.total_bytes += len(data)
            self._recv_buffer.extend(data)
            if not self._header_parsed:
                if not self._parse_header():
                    continue
            self._consume_events()

    def _parse_header(self) -> bool:
        end = self._recv_buffer.find(b"\r\n\r\n")
        if end < 0:
            return False
        header = bytes(self._recv_buffer[:end]).decode("latin-1", "replace")
        lines = header.split("\r\n")
        status_parts = lines[0].split(" ", 2)
        try:
            self._status = int(status_parts[1]) if len(status_parts) > 1 else 0
        except ValueError:
            self._status = 0
        self._chunked = any(
            line.lower().startswith("transfer-encoding:") and "chunked" in line.lower()
            for line in lines[1:]
        )
        self._header_parsed = True
        # The decode cursor scans the retained buffer from the body on.
        del self._recv_buffer[: end + 4]
        self._decode_state = {"position": 0}
        if self._status != 200:
            # No event stream here (endpoint disabled, or a shed): that is
            # an error for a subscriber.
            self.result.errors += 1
            self._ended()
            return False
        return True

    def _consume_events(self) -> None:
        if self._chunked:
            payload = _dechunk_available(self._recv_buffer, self._decode_state)
        else:
            payload = bytes(self._recv_buffer[self._decode_state.get("position", 0):])
            self._decode_state["position"] = len(self._recv_buffer)
        if not payload:
            return
        self._event_buffer.extend(payload)
        # Complete SSE blocks end with a blank line; the last split element
        # is the still-incomplete tail.  Comment-only blocks (the stream
        # preamble) carry no data: field and are not events.
        *blocks, tail = bytes(self._event_buffer).split(b"\n\n")
        self._event_buffer = bytearray(tail)
        for block in blocks:
            if any(line.startswith(b"data:") for line in block.split(b"\n")):
                self.result.sse_events += 1

    def _ended(self) -> None:
        """The server ended the subscription (drain, reap, or disconnect
        policy): the idle subscriber does not resubscribe."""
        self._close()
        self.state = self.DONE

    # -- teardown and selector plumbing (mirrors _SimClient) --------------------

    def _close(self) -> None:
        if self.sock is not None:
            self._unregister()
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _register(self, events: int) -> None:
        if self.sock is None:
            return
        selector = self.generator.selector
        if self._registered_events == 0:
            selector.register(self.sock, events, self)
        elif events != self._registered_events:
            selector.modify(self.sock, events, self)
        self._registered_events = events

    def _unregister(self) -> None:
        if self.sock is not None and self._registered_events:
            try:
                self.generator.selector.unregister(self.sock)
            except (KeyError, ValueError):
                pass
        self._registered_events = 0


class LoadGenerator:
    """Drives a server with ``num_clients`` concurrent simulated clients.

    Parameters
    ----------
    address:
        ``(host, port)`` of the server under test.
    paths:
        The workload: a callable returning the next request path, an
        iterable of paths (cycled), or a single path string.
    num_clients:
        Number of concurrent simulated clients.
    keep_alive:
        Use persistent connections (one connection, many requests) — the
        mechanism the paper uses to emulate long-lived WAN connections.
    duration:
        Stop after this many seconds of wall-clock time.
    max_requests:
        Stop after this many completed requests (whichever limit is first).
    think_time:
        Idle delay a client waits between completing a response and issuing
        its next request; non-zero values emulate slow (WAN) clients.
    range_fraction:
        Fraction of requests issued as single-range GETs
        (``Range: bytes=<range_spec>``), interleaved deterministically
        (error diffusion, so a 0.25 mix is exactly every 4th request) —
        the knob the range-ablation benchmarks turn.  0 disables.
    range_spec:
        The byte range requested by ranged requests (default the first KB,
        the shape a segment fetcher or resumed download probes with).
    conditional_fraction:
        Fraction of requests issued as conditional revalidations
        (``If-None-Match`` replaying the ``ETag`` captured from an earlier
        response for the same path), interleaved with the same
        error-diffusion determinism as ``range_fraction`` — the
        CDN-revalidation mix the fig11-conditional ablation drives.  A
        path whose validator has not been captured yet is fetched
        unconditionally (and captures it for the next slot).  304s are
        counted separately from 200s in the results.
    slow_writers / slow_readers:
        Number of deliberately misbehaving clients attached *alongside*
        the ``num_clients`` real ones: slowloris writers dribbling an
        incomplete request head, and stalled readers draining a response
        slower than the server sends it (see :class:`_SlowClient`).  They
        complete no requests; the run's ``reaped``/``rejected_408``
        counters report how the server dealt with them.
    flood_connections:
        Number of connection-flood clients attached alongside the real
        load: each opens a connection and holds it without sending until
        the server sheds it (503 + close above the admission watermark,
        or a bare close from the fd-exhaustion guard), then floods again
        after one ``dribble_interval`` (see :class:`_FloodClient`).  The
        overload half of the chaos benchmarks.
    retry_backoff:
        Closed-loop delay before a well-behaved client retries a request
        the server shed with 503 (``Retry-After`` is deliberately not
        honoured verbatim: benchmark runs are seconds long, so retries
        use this much shorter pause to keep pressure on the server).
    retry_resets:
        Chaos mode for closed-loop runs: a connection reset mid-exchange
        (the shard serving it was killed) is retried after
        ``retry_backoff`` and counted in ``connection_resets`` rather than
        recorded as a hard error — the behaviour of a well-behaved client
        retrying an idempotent GET.  Open-loop runs ignore this (a retry
        would inflate the offered load past the arrival schedule).
    dribble_bytes / dribble_interval:
        The misbehaving clients' byte rate: ``dribble_bytes`` moved every
        ``dribble_interval`` seconds.
    arrival_rate:
        Switches the generator to **open-loop** mode: requests are issued
        on a deterministic seeded Poisson schedule at this many
        requests/second, independent of how fast the server answers.
        ``num_clients`` becomes the connection-pool bound (the maximum
        concurrency); arrivals that find no idle connection queue in a
        backlog, and the time they wait there is reported as dispatch
        lateness and counted into response latency — so an overloaded
        server shows up as growing queueing delay rather than silently
        throttled offered load (the failure mode closed-loop clients
        hide).  ``None`` (default) keeps the paper's closed-loop behaviour.
    seed:
        Seed for the open-loop arrival schedule.  The same ``(seed,
        arrival_rate)`` pair reproduces the identical schedule run-to-run;
        multi-worker runs derive per-worker seeds via
        :func:`repro.client.latency.derive_worker_seed`.
    """

    def __init__(
        self,
        address: tuple[str, int],
        paths,
        *,
        num_clients: int = 8,
        keep_alive: bool = True,
        duration: Optional[float] = None,
        max_requests: Optional[int] = None,
        think_time: float = 0.0,
        range_fraction: float = 0.0,
        range_spec: str = "0-1023",
        conditional_fraction: float = 0.0,
        slow_writers: int = 0,
        slow_readers: int = 0,
        flood_connections: int = 0,
        sse_clients: int = 0,
        sse_path: str = "/sse",
        chunked_fraction: float = 0.0,
        chunked_path: str = "/cgi-bin/stream",
        retry_backoff: float = 0.05,
        retry_resets: bool = False,
        dribble_bytes: int = 1,
        dribble_interval: float = 0.5,
        arrival_rate: Optional[float] = None,
        seed: int = 0,
    ):
        if duration is None and max_requests is None:
            raise ValueError("specify duration, max_requests or both")
        if not 0.0 <= range_fraction <= 1.0:
            raise ValueError("range_fraction must be between 0 and 1")
        if not 0.0 <= conditional_fraction <= 1.0:
            raise ValueError("conditional_fraction must be between 0 and 1")
        if not 0.0 <= chunked_fraction <= 1.0:
            raise ValueError("chunked_fraction must be between 0 and 1")
        if arrival_rate is not None and arrival_rate <= 0.0:
            raise ValueError("arrival_rate must be positive (or None for closed loop)")
        if arrival_rate is not None and think_time > 0.0:
            raise ValueError("think_time is a closed-loop knob; open loop paces by schedule")
        self.address = address
        self.num_clients = num_clients
        self.keep_alive = keep_alive
        self.duration = duration
        self.max_requests = max_requests
        self.think_time = think_time
        self.range_fraction = range_fraction
        self.range_spec = range_spec
        self.conditional_fraction = conditional_fraction
        self.slow_writers = slow_writers
        self.slow_readers = slow_readers
        self.flood_connections = flood_connections
        self.sse_clients = sse_clients
        self.sse_path = sse_path
        self.chunked_fraction = chunked_fraction
        self.chunked_path = chunked_path
        self._chunked_debt = 0.0
        self.retry_backoff = max(0.0, retry_backoff)
        self.retry_resets = retry_resets
        self.dribble_bytes = max(1, dribble_bytes)
        self.dribble_interval = max(0.001, dribble_interval)
        self.arrival_rate = arrival_rate
        self.seed = seed
        self.open_loop = arrival_rate is not None
        self._range_debt = 0.0
        self._conditional_debt = 0.0
        self._etags: dict[str, str] = {}
        self._next_path = self._make_path_source(paths)
        self._request_cache: dict[tuple[str, bool, Optional[str]], bytes] = {}
        self.selector = selectors.DefaultSelector()
        self.total_requests = 0
        self.total_bytes = 0
        self.total_errors = 0
        self.total_not_modified = 0
        self.latency = LatencyHistogram()
        self.dispatched = 0
        self.lateness_sum = 0.0
        self.lateness_max = 0.0
        self.max_backlog = 0
        self._backlog: deque[float] = deque()
        self._idle: list[_SimClient] = []
        self._arrivals = (
            exponential_arrivals(arrival_rate, seed) if self.open_loop else None
        )
        self._next_arrival: Optional[float] = None
        self._start_time = 0.0
        self._deadline: Optional[float] = None
        self._restarts: list[tuple[float, _SimClient]] = []
        self._calls: list[tuple[float, Callable[[], None]]] = []

    @staticmethod
    def _make_path_source(paths) -> Callable[[], str]:
        if callable(paths):
            return paths
        if isinstance(paths, str):
            return lambda: paths
        if isinstance(paths, Iterable):
            items = list(paths)
            if not items:
                raise ValueError("paths iterable is empty")
            state = {"index": 0}

            def cycle() -> str:
                value = items[state["index"] % len(items)]
                state["index"] += 1
                return value

            return cycle
        raise TypeError("paths must be a callable, a string or an iterable of strings")

    def next_path(self) -> str:
        """The next request path for whichever client asks."""
        return self._next_path()

    def next_is_ranged(self) -> bool:
        """Whether the next request should carry the Range header.

        Error-diffusion on :attr:`range_fraction`: deterministic (the
        benchmarks need repeatable mixes without an RNG) and exact over any
        window — a 0.25 mix issues precisely every 4th request ranged.
        """
        if self.range_fraction <= 0.0:
            return False
        self._range_debt += self.range_fraction
        if self._range_debt >= 1.0:
            self._range_debt -= 1.0
            return True
        return False

    def next_is_conditional(self) -> bool:
        """Whether the next request should be a conditional revalidation.

        Same error-diffusion scheme as :meth:`next_is_ranged`, on its own
        accumulator, so the two mixes interleave deterministically and
        independently.
        """
        if self.conditional_fraction <= 0.0:
            return False
        self._conditional_debt += self.conditional_fraction
        if self._conditional_debt >= 1.0:
            self._conditional_debt -= 1.0
            return True
        return False

    def next_request_shape(self) -> str:
        """Decide the next request's shape: conditional, ranged or plain.

        A request carries at most one special header, so when both mixes
        are active their slots must not collide.  The conditional
        accumulator wins a collision, but the range accumulator still
        *advances* on every request and simply carries its debt to the
        next free slot — both fractions therefore converge to their exact
        shares (within one startup slot) as long as they sum to at most 1;
        beyond that, ranged requests fill whatever slots revalidations
        leave, with the carry capped so the debt cannot grow without
        bound.
        """
        conditional = self.next_is_conditional()
        if self.range_fraction > 0.0:
            self._range_debt += self.range_fraction
            if not conditional and self._range_debt >= 1.0:
                self._range_debt -= 1.0
                return "ranged"
            self._range_debt = min(self._range_debt, 2.0)
        if self.chunked_fraction > 0.0:
            # Chunked-mix slots ride the same error-diffusion scheme on a
            # third accumulator, yielding to conditional (and to ranged via
            # slot order) exactly like ranged yields to conditional.
            self._chunked_debt += self.chunked_fraction
            if not conditional and self._chunked_debt >= 1.0:
                self._chunked_debt -= 1.0
                return "chunked"
            self._chunked_debt = min(self._chunked_debt, 2.0)
        return "conditional" if conditional else "plain"

    def record_etag(self, path: str, etag: str) -> None:
        """Remember the validator a response for ``path`` advertised."""
        if etag:
            self._etags[path] = etag

    def captured_etag(self, path: str) -> Optional[str]:
        """The last ``ETag`` seen for ``path``, if any response carried one."""
        return self._etags.get(path)

    def request_bytes(
        self, path: str, ranged: bool = False, etag: Optional[str] = None
    ) -> bytes:
        """The encoded request for ``path``, composed once per distinct shape.

        The client side of the paper's setup must stay far cheaper than the
        server side it measures; re-encoding an identical request for every
        send would put avoidable per-request allocation work on the
        load-generating core.  Ranged, conditional (one entry per replayed
        validator) and plain requests cache separately.
        """
        cached = self._request_cache.get((path, ranged, etag))
        if cached is None:
            connection = "keep-alive" if self.keep_alive else "close"
            host = "%s:%d" % self.address
            range_line = f"Range: bytes={self.range_spec}\r\n" if ranged else ""
            conditional_line = f"If-None-Match: {etag}\r\n" if etag else ""
            cached = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"{range_line}"
                f"{conditional_line}"
                f"Connection: {connection}\r\n"
                "\r\n"
            ).encode("latin-1")
            self._request_cache[(path, ranged, etag)] = cached
        return cached

    def finished(self) -> bool:
        """Whether the run's duration or request budget is exhausted."""
        if self.max_requests is not None and self.total_requests >= self.max_requests:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return True
        return False

    def schedule_restart(self, client: _SimClient, delay: float) -> None:
        """Re-start ``client`` after ``delay`` seconds (think-time emulation)."""
        self._restarts.append((time.monotonic() + delay, client))

    def schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` seconds of loop time.

        The generic timer the misbehaving clients pace their dribbles
        with; fired from the same place as think-time restarts.
        """
        self._calls.append((time.monotonic() + delay, callback))

    # -- open-loop dispatching ---------------------------------------------------

    def client_idle(self, client: _SimClient) -> None:
        """An open-loop client finished (or failed) its request.

        Hand it the oldest backlogged arrival immediately, or park it in
        the idle pool.  Parked clients with a live keep-alive connection
        stay registered for readability so a server-side close is noticed
        while they wait.
        """
        if self._backlog and not self.finished():
            self._dispatch(client, self._backlog.popleft())
            return
        client.state = _SimClient.IDLE
        self._idle.append(client)
        if client.sock is not None:
            client._register(_READ)

    def _dispatch(self, client: _SimClient, scheduled: float) -> None:
        now = time.monotonic()
        lateness = max(0.0, now - scheduled)
        self.dispatched += 1
        self.lateness_sum += lateness
        if lateness > self.lateness_max:
            self.lateness_max = lateness
        client.dispatch(scheduled)

    def _pump_open_loop(self) -> None:
        """Move due arrivals into the backlog and the backlog onto idle clients."""
        now = time.monotonic()
        assert self._arrivals is not None
        if self._next_arrival is None:
            self._next_arrival = self._start_time + next(self._arrivals)
        while self._next_arrival <= now:
            self._backlog.append(self._next_arrival)
            self._next_arrival = self._start_time + next(self._arrivals)
        if len(self._backlog) > self.max_backlog:
            self.max_backlog = len(self._backlog)
        while self._backlog and self._idle and not self.finished():
            client = self._idle.pop()
            client._unregister()
            self._dispatch(client, self._backlog.popleft())

    def _poll_timeout(self) -> float:
        timeout = 0.05
        if self.open_loop and self._next_arrival is not None and not self._backlog:
            timeout = min(timeout, max(0.0, self._next_arrival - time.monotonic()))
        return timeout

    def run(self) -> LoadResult:
        """Run the load and return aggregate results."""
        start = time.monotonic()
        self._start_time = start
        if self.duration is not None:
            self._deadline = start + self.duration
        clients = [_SimClient(self, i) for i in range(self.num_clients)]
        slow = [
            _SlowClient(self, i, _SlowClient.WRITER) for i in range(self.slow_writers)
        ] + [
            _SlowClient(self, i, _SlowClient.READER) for i in range(self.slow_readers)
        ] + [
            _FloodClient(self, i) for i in range(self.flood_connections)
        ] + [
            _SSEClient(self, i) for i in range(self.sse_clients)
        ]
        everyone = clients + slow
        if self.open_loop:
            # Clients start parked; the arrival schedule decides when each
            # first connects.
            for client in clients:
                client.state = _SimClient.IDLE
                self._idle.append(client)
            for client in slow:
                client.start()
        else:
            for client in everyone:
                client.start()

        while not self.finished():
            self._fire_timers()
            if self.open_loop:
                self._pump_open_loop()
            active = any(client.state != _SimClient.DONE for client in everyone)
            if not active and not self._restarts and not self._calls:
                break
            events = self.selector.select(timeout=self._poll_timeout())
            for key, mask in events:
                key.data.on_ready(mask)

        for client in everyone:
            client._close()
        self.selector.close()
        elapsed = time.monotonic() - start

        result = LoadResult(
            elapsed=elapsed,
            per_client=[c.result for c in everyone],
            latency=self.latency,
            dispatched=self.dispatched,
            lateness_sum=self.lateness_sum,
            lateness_max=self.lateness_max,
            max_backlog=self.max_backlog,
        )
        for client in everyone:
            result.requests_completed += client.result.requests_completed
            result.bytes_received += client.result.bytes_received
            result.errors += client.result.errors
            result.connects += client.result.connects
            result.not_modified += client.result.not_modified
            result.responses_2xx += client.result.responses_2xx
            result.responses_206 += client.result.responses_206
            result.reaped += client.result.reaped
            result.rejected_408 += client.result.rejected_408
            result.rejected_503 += client.result.rejected_503
            result.retries += client.result.retries
            result.connection_resets += client.result.connection_resets
            result.chunked_responses += client.result.chunked_responses
            result.sse_events += client.result.sse_events
        return result

    def _fire_timers(self) -> None:
        now = time.monotonic()
        if self._restarts:
            due = [item for item in self._restarts if item[0] <= now]
            self._restarts = [item for item in self._restarts if item[0] > now]
            for _, client in due:
                if not self.finished():
                    client._connect()
        if self._calls:
            calls = [item for item in self._calls if item[0] <= now]
            self._calls = [item for item in self._calls if item[0] > now]
            for _, callback in calls:
                callback()

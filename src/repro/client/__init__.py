"""HTTP clients: blocking fetcher, event-driven loadgen, cluster coordinator.

The paper's measurements use "an event-driven program that simulates
multiple HTTP clients; each simulated HTTP client makes HTTP requests as
fast as the server can handle them" (Section 6).
:class:`repro.client.loadgen.LoadGenerator` is that program — extended
with an open-loop Poisson arrival mode and per-request latency histograms
(:mod:`repro.client.latency`).  :class:`repro.client.coordinator.LoadCoordinator`
scales it to N worker processes (optionally CPU-pinned) whose counters and
latency reservoirs the parent merges exactly.
:mod:`repro.client.simple` provides a small blocking client used by tests
and examples to check individual responses.
"""

from repro.client.coordinator import ClusterResult, LoadCoordinator, merge_results
from repro.client.latency import (
    LatencyHistogram,
    derive_worker_seed,
    poisson_offsets,
)
from repro.client.loadgen import ClientResult, LoadGenerator, LoadResult
from repro.client.simple import HTTPResponse, fetch

__all__ = [
    "LoadGenerator",
    "LoadResult",
    "ClientResult",
    "LoadCoordinator",
    "ClusterResult",
    "merge_results",
    "LatencyHistogram",
    "derive_worker_seed",
    "poisson_offsets",
    "fetch",
    "HTTPResponse",
]

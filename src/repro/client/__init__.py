"""HTTP clients: a simple blocking client and the event-driven load generator.

The paper's measurements use "an event-driven program that simulates
multiple HTTP clients; each simulated HTTP client makes HTTP requests as
fast as the server can handle them" (Section 6).
:class:`repro.client.loadgen.LoadGenerator` is that program;
:mod:`repro.client.simple` provides a small blocking client used by tests
and examples to check individual responses.
"""

from repro.client.loadgen import ClientResult, LoadGenerator, LoadResult
from repro.client.simple import HTTPResponse, fetch

__all__ = ["LoadGenerator", "LoadResult", "ClientResult", "fetch", "HTTPResponse"]

"""Multi-process load-generation coordinator (ROADMAP item 5).

One :class:`~repro.client.loadgen.LoadGenerator` is a single event loop on
a single core — enough to saturate one server process on small responses,
but not to measure a shard fleet or an io_uring hot loop without the
client becoming the bottleneck.  :class:`LoadCoordinator` scales the
client side the same way the servers scale: ``workers`` separate
*processes* (spawned, so no state leaks from the coordinating process —
which may be running the server under test in a thread), each driving its
own ``LoadGenerator``, optionally pinned to a CPU, each keeping its own
counters and latency histogram.

The parent merges the per-worker results **exactly**: counters are integer
sums, latency reservoirs are fixed-layout histograms whose merge is a
lossless element-wise add (see :mod:`repro.client.latency`), and the
merged mean is computed from integer-nanosecond totals so it is
independent of merge order.  ``merged == sum(per_worker)`` is therefore an
identity the test suite asserts field by field, not an approximation.

Open-loop runs give each worker ``arrival_rate / workers`` of the total
offered load on its own derived seed
(:func:`~repro.client.latency.derive_worker_seed`), so one ``--seed``
reproduces the whole cluster's schedule for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.client.latency import LatencyHistogram, derive_worker_seed
from repro.client.loadgen import LoadGenerator, LoadResult

__all__ = ["LoadCoordinator", "ClusterResult", "WorkerSpec", "merge_results"]

#: Grace period added to the expected run duration before the parent
#: declares a worker hung (spawn + import + connect overhead).
_WORKER_GRACE = 60.0


@dataclass
class WorkerSpec:
    """Picklable description of one worker process's load share."""

    worker_index: int
    address: tuple[str, int]
    paths: Union[str, Sequence[str]]
    num_clients: int
    keep_alive: bool
    duration: Optional[float]
    max_requests: Optional[int]
    range_fraction: float
    range_spec: str
    conditional_fraction: float
    slow_writers: int
    slow_readers: int
    flood_connections: int
    sse_clients: int
    sse_path: str
    chunked_fraction: float
    chunked_path: str
    retry_backoff: float
    retry_resets: bool
    dribble_bytes: int
    dribble_interval: float
    arrival_rate: Optional[float]
    seed: int
    cpu: Optional[int]


def _run_worker(spec: WorkerSpec, queue) -> None:
    """Worker-process entry point: pin, generate load, report back."""
    if spec.cpu is not None and hasattr(os, "sched_setaffinity"):
        try:
            os.sched_setaffinity(0, {spec.cpu})
        except OSError:
            pass  # affinity is an optimization, never a failure
    generator = LoadGenerator(
        spec.address,
        list(spec.paths) if not isinstance(spec.paths, str) else spec.paths,
        num_clients=spec.num_clients,
        keep_alive=spec.keep_alive,
        duration=spec.duration,
        max_requests=spec.max_requests,
        range_fraction=spec.range_fraction,
        range_spec=spec.range_spec,
        conditional_fraction=spec.conditional_fraction,
        slow_writers=spec.slow_writers,
        slow_readers=spec.slow_readers,
        flood_connections=spec.flood_connections,
        sse_clients=spec.sse_clients,
        sse_path=spec.sse_path,
        chunked_fraction=spec.chunked_fraction,
        chunked_path=spec.chunked_path,
        retry_backoff=spec.retry_backoff,
        retry_resets=spec.retry_resets,
        dribble_bytes=spec.dribble_bytes,
        dribble_interval=spec.dribble_interval,
        arrival_rate=spec.arrival_rate,
        seed=spec.seed,
    )
    result = generator.run()
    queue.put((spec.worker_index, result))


def merge_results(results: Sequence[LoadResult]) -> LoadResult:
    """Exact merge of per-worker results into one cluster-wide result.

    Integer counters add; histograms merge losslessly; ``elapsed`` is the
    slowest worker's wall clock (the workers ran concurrently, so rates
    are total work over the window that covered all of it).
    """
    merged = LoadResult()
    merged.latency = LatencyHistogram.merged(r.latency for r in results)
    for result in results:
        merged.requests_completed += result.requests_completed
        merged.bytes_received += result.bytes_received
        merged.errors += result.errors
        merged.connects += result.connects
        merged.not_modified += result.not_modified
        merged.responses_2xx += result.responses_2xx
        merged.responses_206 += result.responses_206
        merged.reaped += result.reaped
        merged.rejected_408 += result.rejected_408
        merged.rejected_503 += result.rejected_503
        merged.retries += result.retries
        merged.connection_resets += result.connection_resets
        merged.chunked_responses += result.chunked_responses
        merged.sse_events += result.sse_events
        merged.dispatched += result.dispatched
        merged.lateness_sum += result.lateness_sum
        merged.lateness_max = max(merged.lateness_max, result.lateness_max)
        merged.max_backlog = max(merged.max_backlog, result.max_backlog)
        merged.elapsed = max(merged.elapsed, result.elapsed)
        merged.per_client.extend(result.per_client)
    return merged


@dataclass
class ClusterResult:
    """Outcome of one multi-process run: the exact merge plus the shards."""

    merged: LoadResult
    per_worker: list[LoadResult] = field(default_factory=list)
    workers: int = 0
    seed: int = 0
    worker_seeds: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        """Machine-readable summary (the ``loadgen --json`` payload)."""
        return {
            "workers": self.workers,
            "seed": self.seed,
            "worker_seeds": list(self.worker_seeds),
            "merged": self.merged.to_dict(),
            "per_worker": [result.to_dict() for result in self.per_worker],
        }


class LoadCoordinator:
    """Spawn ``workers`` load-generator processes and merge their results.

    Parameters mirror :class:`~repro.client.loadgen.LoadGenerator`, with
    the cluster-level additions:

    workers:
        Number of worker processes.  ``num_clients``, ``slow_writers`` /
        ``slow_readers``, ``flood_connections`` and ``sse_clients`` are
        *per worker*;
        ``arrival_rate`` and ``max_requests`` are cluster totals split
        evenly across workers.
    seed:
        Base seed; worker ``i`` runs on ``derive_worker_seed(seed, i)``.
    pin_cpus:
        Pin worker ``i`` to allowed-CPU ``i % len(allowed)`` via
        ``os.sched_setaffinity`` (best effort; silently skipped where the
        platform lacks it).
    """

    def __init__(
        self,
        address: tuple[str, int],
        paths: Union[str, Sequence[str]],
        *,
        workers: int = 2,
        num_clients: int = 8,
        keep_alive: bool = True,
        duration: Optional[float] = None,
        max_requests: Optional[int] = None,
        range_fraction: float = 0.0,
        range_spec: str = "0-1023",
        conditional_fraction: float = 0.0,
        slow_writers: int = 0,
        slow_readers: int = 0,
        flood_connections: int = 0,
        sse_clients: int = 0,
        sse_path: str = "/sse",
        chunked_fraction: float = 0.0,
        chunked_path: str = "/cgi-bin/stream",
        retry_backoff: float = 0.05,
        retry_resets: bool = False,
        dribble_bytes: int = 1,
        dribble_interval: float = 0.5,
        arrival_rate: Optional[float] = None,
        seed: int = 0,
        pin_cpus: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if duration is None and max_requests is None:
            raise ValueError("specify duration, max_requests or both")
        if callable(paths):
            raise TypeError(
                "multi-process load needs picklable paths: pass a string or a "
                "sequence of strings, not a callable"
            )
        self.address = address
        self.paths = paths if isinstance(paths, str) else list(paths)
        self.workers = workers
        self.num_clients = num_clients
        self.keep_alive = keep_alive
        self.duration = duration
        self.max_requests = max_requests
        self.range_fraction = range_fraction
        self.range_spec = range_spec
        self.conditional_fraction = conditional_fraction
        self.slow_writers = slow_writers
        self.slow_readers = slow_readers
        self.flood_connections = flood_connections
        self.sse_clients = sse_clients
        self.sse_path = sse_path
        self.chunked_fraction = chunked_fraction
        self.chunked_path = chunked_path
        self.retry_backoff = retry_backoff
        self.retry_resets = retry_resets
        self.dribble_bytes = dribble_bytes
        self.dribble_interval = dribble_interval
        self.arrival_rate = arrival_rate
        self.seed = seed
        self.pin_cpus = pin_cpus

    # -- planning ----------------------------------------------------------------

    def _cpu_plan(self) -> list[Optional[int]]:
        if not self.pin_cpus:
            return [None] * self.workers
        if hasattr(os, "sched_getaffinity"):
            allowed = sorted(os.sched_getaffinity(0))
        else:  # pragma: no cover - non-Linux fallback
            allowed = list(range(os.cpu_count() or 1))
        return [allowed[i % len(allowed)] for i in range(self.workers)]

    def _split_total(self, total: Optional[int]) -> list[Optional[int]]:
        """Split an integer cluster total across workers, exactly."""
        if total is None:
            return [None] * self.workers
        base, excess = divmod(total, self.workers)
        return [base + (1 if i < excess else 0) for i in range(self.workers)]

    def worker_specs(self) -> list[WorkerSpec]:
        """The per-worker plan (exposed for tests and ``--json`` output)."""
        cpus = self._cpu_plan()
        request_shares = self._split_total(self.max_requests)
        per_worker_rate = (
            self.arrival_rate / self.workers if self.arrival_rate is not None else None
        )
        return [
            WorkerSpec(
                worker_index=index,
                address=self.address,
                paths=self.paths,
                num_clients=self.num_clients,
                keep_alive=self.keep_alive,
                duration=self.duration,
                max_requests=request_shares[index],
                range_fraction=self.range_fraction,
                range_spec=self.range_spec,
                conditional_fraction=self.conditional_fraction,
                slow_writers=self.slow_writers,
                slow_readers=self.slow_readers,
                flood_connections=self.flood_connections,
                sse_clients=self.sse_clients,
                sse_path=self.sse_path,
                chunked_fraction=self.chunked_fraction,
                chunked_path=self.chunked_path,
                retry_backoff=self.retry_backoff,
                retry_resets=self.retry_resets,
                dribble_bytes=self.dribble_bytes,
                dribble_interval=self.dribble_interval,
                arrival_rate=per_worker_rate,
                seed=derive_worker_seed(self.seed, index),
                cpu=cpus[index],
            )
            for index in range(self.workers)
        ]

    # -- execution ---------------------------------------------------------------

    def run(self) -> ClusterResult:
        """Run every worker to completion and return the exact merge.

        Workers are ``spawn``-ed, not forked: the coordinating process
        often hosts the server under test in a thread, and forking a
        threaded process duplicates lock state and open sockets into the
        client — exactly the cross-contamination a measurement harness
        must not have.
        """
        specs = self.worker_specs()
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        processes = [
            context.Process(target=_run_worker, args=(spec, queue), daemon=True)
            for spec in specs
        ]
        for process in processes:
            process.start()
        budget = (self.duration or 0.0) + _WORKER_GRACE
        collected: dict[int, LoadResult] = {}
        try:
            for _ in specs:
                try:
                    index, result = queue.get(timeout=budget)
                except Exception:
                    raise RuntimeError(
                        f"load worker did not report within {budget:.0f}s "
                        f"({len(collected)}/{len(specs)} reported)"
                    ) from None
                collected[index] = result
        finally:
            for process in processes:
                process.join(timeout=_WORKER_GRACE)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=5.0)
        failed = [spec.worker_index for spec in specs if spec.worker_index not in collected]
        if failed:  # pragma: no cover - guarded by the RuntimeError above
            raise RuntimeError(f"load workers {failed} produced no result")
        per_worker = [collected[spec.worker_index] for spec in specs]
        return ClusterResult(
            merged=merge_results(per_worker),
            per_worker=per_worker,
            workers=self.workers,
            seed=self.seed,
            worker_seeds=[spec.seed for spec in specs],
        )

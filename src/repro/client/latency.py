"""Latency statistics for the load-generation layer.

The measurement problem this module solves: a cluster-scale load run is N
worker processes, each observing its own stream of per-request latencies,
and the parent must report percentiles (p50/p90/p99/p999), mean/max and a
CDF over the *union* of those streams.  Keeping raw samples would make the
merge exact but allocation-heavy (millions of floats per worker crossing a
pipe); sampling reservoirs merge cheaply but make tail percentiles (p999)
noisy — the one number the open-loop benchmarks exist to pin down.

:class:`LatencyHistogram` takes the third route, the one HdrHistogram-style
recorders use: a **fixed-bucket log-scale histogram**.  Bucket boundaries
are a pure function of three class constants, so every worker builds the
identical bucket layout and the parent's merge is a lossless element-wise
add — merging shards then reading a percentile gives *exactly* the same
answer as recording every sample into one histogram.  Sums are kept in
integer nanoseconds so the mean, too, is independent of merge order.

Quantile error is bounded by the bucket width: with
:data:`~LatencyHistogram.BUCKETS_PER_DECADE` = 60 a reported percentile is
within ``10**(1/60) - 1`` (≈ 3.9 %) above the true sample value, and never
above the observed maximum.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, Iterator, Optional

__all__ = [
    "LatencyHistogram",
    "derive_worker_seed",
    "poisson_offsets",
    "exponential_arrivals",
]


def derive_worker_seed(base_seed: int, worker_index: int) -> int:
    """A per-worker RNG seed derived deterministically from the run seed.

    Every worker must draw an *independent* arrival schedule, yet the whole
    run must be reproducible from one ``--seed`` regardless of worker
    count.  Deriving through SHA-256 of ``(base_seed, worker_index)``
    guarantees both: the mapping is stable across runs, Python versions and
    platforms (no reliance on ``hash()``, which is salted per process), and
    adjacent worker indexes land in unrelated parts of the seed space
    instead of the correlated streams ``base_seed + worker_index`` would
    give some PRNGs.
    """
    digest = hashlib.sha256(f"{base_seed}:{worker_index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def exponential_arrivals(rate: float, seed: int) -> Iterator[float]:
    """Infinite stream of absolute arrival offsets for a Poisson process.

    Yields monotonically increasing offsets (seconds from the start of the
    run) whose inter-arrival gaps are exponentially distributed with the
    given ``rate`` (requests/second).  Fully determined by ``seed``: the
    schedule is decided before the run, which is the defining property of
    *open-loop* load — the server's slowness cannot throttle the offered
    load, it can only grow the backlog.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    rng = random.Random(seed)
    offset = 0.0
    while True:
        offset += rng.expovariate(rate)
        yield offset


def poisson_offsets(rate: float, seed: int, count: int) -> list[float]:
    """The first ``count`` arrival offsets of :func:`exponential_arrivals`.

    Convenience for tests and tooling that inspect the schedule a worker
    would follow for a given ``(rate, seed)``.
    """
    stream = exponential_arrivals(rate, seed)
    return [next(stream) for _ in range(count)]


class LatencyHistogram:
    """Fixed-bucket log-scale latency recorder with lossless merging.

    Buckets span :data:`MIN_LATENCY` .. :data:`MIN_LATENCY` ·
    10^:data:`DECADES` (1 µs .. 100 s) with :data:`BUCKETS_PER_DECADE`
    geometrically spaced buckets per decade, plus one underflow and one
    overflow bucket.  All instances share the layout, so :meth:`merge` is
    element-wise and exact.
    """

    #: Lower edge of the first regular bucket (seconds).
    MIN_LATENCY = 1e-6
    #: Geometric resolution: relative bucket width is ``10**(1/60)-1`` ≈ 3.9 %.
    BUCKETS_PER_DECADE = 60
    #: Decades covered above :data:`MIN_LATENCY` (1 µs → 100 s).
    DECADES = 8

    _REGULAR = BUCKETS_PER_DECADE * DECADES
    #: Total bucket count: underflow + regular + overflow.
    NUM_BUCKETS = _REGULAR + 2

    __slots__ = ("counts", "count", "sum_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.counts = [0] * self.NUM_BUCKETS
        self.count = 0
        #: Totals in integer nanoseconds: integer addition is associative,
        #: so the merged mean is bit-identical to the unsharded mean.
        self.sum_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None

    # -- recording -----------------------------------------------------------

    def _bucket_index(self, seconds: float) -> int:
        if seconds < self.MIN_LATENCY:
            return 0
        index = 1 + int(math.log10(seconds / self.MIN_LATENCY) * self.BUCKETS_PER_DECADE)
        if index > self._REGULAR:
            return self.NUM_BUCKETS - 1
        return index

    def record(self, seconds: float) -> None:
        """Add one latency observation (seconds)."""
        if seconds < 0.0:
            seconds = 0.0
        nanos = int(seconds * 1e9)
        self.counts[self._bucket_index(seconds)] += 1
        self.count += 1
        self.sum_ns += nanos
        if self.min_ns is None or nanos < self.min_ns:
            self.min_ns = nanos
        if self.max_ns is None or nanos > self.max_ns:
            self.max_ns = nanos

    # -- merging -------------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one, losslessly.

        Bucket layouts are a class invariant, so the merge is a plain
        element-wise add; reading any percentile afterwards yields exactly
        what recording both sample streams into one histogram would have.
        """
        if other.NUM_BUCKETS != self.NUM_BUCKETS:  # pragma: no cover - class invariant
            raise ValueError("histogram bucket layouts differ")
        for index, value in enumerate(other.counts):
            if value:
                self.counts[index] += value
        self.count += other.count
        self.sum_ns += other.sum_ns
        if other.min_ns is not None and (self.min_ns is None or other.min_ns < self.min_ns):
            self.min_ns = other.min_ns
        if other.max_ns is not None and (self.max_ns is None or other.max_ns > self.max_ns):
            self.max_ns = other.max_ns

    @classmethod
    def merged(cls, shards: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A new histogram holding the union of ``shards``."""
        whole = cls()
        for shard in shards:
            whole.merge(shard)
        return whole

    # -- reading -------------------------------------------------------------

    def _bucket_upper_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` in seconds."""
        if index <= 0:
            return self.MIN_LATENCY
        if index >= self.NUM_BUCKETS - 1:
            # Overflow: the exact observed maximum is the only honest bound.
            return (self.max_ns or 0) / 1e9
        return self.MIN_LATENCY * 10 ** (index / self.BUCKETS_PER_DECADE)

    def percentile(self, fraction: float) -> float:
        """The latency (seconds) at or below which ``fraction`` of samples fall.

        Returns the containing bucket's upper edge, clamped to the exact
        observed maximum — so the reported value is never below the true
        quantile and never above the slowest sample.  Empty histogram → 0.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index, value in enumerate(self.counts):
            cumulative += value
            if cumulative >= rank:
                return min(self._bucket_upper_edge(index), (self.max_ns or 0) / 1e9)
        return (self.max_ns or 0) / 1e9  # pragma: no cover - rank <= count

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0 when empty); exact under merging."""
        if self.count == 0:
            return 0.0
        return self.sum_ns / self.count / 1e9

    @property
    def max(self) -> float:
        """Largest observation in seconds (0 when empty)."""
        return (self.max_ns or 0) / 1e9

    @property
    def min(self) -> float:
        """Smallest observation in seconds (0 when empty)."""
        return (self.min_ns or 0) / 1e9

    def summary_ms(self) -> dict:
        """The percentile summary the BENCH json schema embeds, in ms.

        Key set is fixed (``LATENCY_KEYS`` in
        :mod:`repro.experiments.results` validates against it).
        """
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1e3, 6),
            "min_ms": round(self.min * 1e3, 6),
            "max_ms": round(self.max * 1e3, 6),
            "p50_ms": round(self.percentile(0.50) * 1e3, 6),
            "p90_ms": round(self.percentile(0.90) * 1e3, 6),
            "p99_ms": round(self.percentile(0.99) * 1e3, 6),
            "p999_ms": round(self.percentile(0.999) * 1e3, 6),
        }

    def cdf_ms(self) -> list[list[float]]:
        """The cumulative distribution as ``[upper_edge_ms, fraction]`` pairs.

        One point per occupied bucket, fractions nondecreasing and ending
        at 1.0 — the format the paper's WAN-figure CDFs use and the BENCH
        json schema validates.  Empty histogram → empty list.
        """
        points: list[list[float]] = []
        cumulative = 0
        for index, value in enumerate(self.counts):
            if not value:
                continue
            cumulative += value
            points.append(
                [
                    round(min(self._bucket_upper_edge(index), self.max) * 1e3, 6),
                    round(cumulative / self.count, 9),
                ]
            )
        if points:
            points[-1][1] = 1.0
        return points

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Picklable/JSON-able snapshot; sparse, exact, merge-preserving."""
        return {
            "scheme": "log10",
            "min_latency_s": self.MIN_LATENCY,
            "buckets_per_decade": self.BUCKETS_PER_DECADE,
            "decades": self.DECADES,
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": [[i, v] for i, v in enumerate(self.counts) if v],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Rebuild a histogram snapshotted by :meth:`to_dict`.

        Refuses snapshots recorded with a different bucket layout — a
        silent re-bucketing would break the exact-merge guarantee.
        """
        if (
            payload.get("scheme") != "log10"
            or payload.get("min_latency_s") != cls.MIN_LATENCY
            or payload.get("buckets_per_decade") != cls.BUCKETS_PER_DECADE
            or payload.get("decades") != cls.DECADES
        ):
            raise ValueError("incompatible histogram layout")
        histogram = cls()
        histogram.count = int(payload["count"])
        histogram.sum_ns = int(payload["sum_ns"])
        histogram.min_ns = None if payload["min_ns"] is None else int(payload["min_ns"])
        histogram.max_ns = None if payload["max_ns"] is None else int(payload["max_ns"])
        for index, value in payload["buckets"]:
            histogram.counts[int(index)] = int(value)
        return histogram

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.count == other.count
            and self.sum_ns == other.sum_ns
            and self.min_ns == other.min_ns
            and self.max_ns == other.max_ns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean * 1e3:.3f}ms, "
            f"p99={self.percentile(0.99) * 1e3:.3f}ms)"
        )

"""HTTP response-header generation with byte-position alignment.

Section 5.5 of the paper describes an optimization unique to Flash among the
servers compared: when ``writev()`` gathers the response header and the file
data into one kernel buffer, a header whose length is not a multiple of the
machine word size forces misaligned copies of *all* subsequent regions.
Flash therefore aligns response headers on 32-byte boundaries and pads their
length to a multiple of 32 bytes by adding characters to variable-length
fields (the ``Server`` name).

This module reproduces that behaviour: :class:`ResponseHeaderBuilder`
produces response headers whose encoded length is padded to a configurable
alignment, and records how much padding was applied so the evaluation layer
can quantify the cost of *not* doing it (the Zeus anomaly in Figure 7).
"""

from __future__ import annotations

import email.utils
import hashlib
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.http.errors import reason_phrase

#: Alignment target used by Flash (Section 5.5): 32 bytes, chosen to match
#: systems with 32-byte cache lines rather than simple word alignment.
DEFAULT_ALIGNMENT = 32

#: Server identification string, the variable-length field that gets padded.
SERVER_NAME = "Flash-repro/1.0"


def http_date(timestamp: float | None = None) -> str:
    """Format ``timestamp`` (seconds since epoch) as an RFC 1123 date."""
    return email.utils.formatdate(timestamp, usegmt=True)


def serialized_timestamp(mtime: float) -> float:
    """The whole-second timestamp ``Last-Modified: {http_date(mtime)}`` carries.

    Validator comparisons must use *this* second, not ``int(mtime)``: the
    serializer (``email.utils.formatdate`` →
    ``datetime.fromtimestamp``) rounds the fraction to the nearest
    microsecond before flooring to seconds, so an mtime within half a
    microsecond of the next second serializes one second *later* than
    ``int()`` truncation says.  Comparing with ``int(mtime)`` would then
    304 against a validator older than the ``Last-Modified`` the server
    itself advertises for the file.
    """
    parsed = email.utils.parsedate_to_datetime(http_date(mtime))
    return parsed.timestamp()


def make_etag(size: int, mtime_ns: int) -> str:
    """Mint the strong entity-tag for a ``(size, mtime_ns)`` file identity.

    RFC 7232 §2.3: the tag is an opaque quoted string; this server derives
    it from the two fields pathname translation already collects, at
    nanosecond mtime granularity — strictly finer than the one-second
    ``Last-Modified`` validator, which is what makes the tag *strong* (two
    distinct on-disk states within the same second still get distinct
    tags).  The quotes are part of the returned value so it can be emitted
    and compared verbatim.
    """
    return f'"{size:x}-{mtime_ns:x}"'


def parse_etag_list(value: str) -> Optional[list[str]]:
    """Split an ``If-Match``/``If-None-Match`` value into entity-tags.

    Returns ``["*"]`` for the wildcard form, a list of raw tags (weak
    prefix and quotes preserved, e.g. ``'W/"abc"'``) for a tag list, or
    ``None`` when the value is malformed — which callers treat as "no tag
    matches", degrading to the unconditional answer.  Commas *inside*
    quoted tags are honoured (RFC 7232 permits them in ``etagc``), so the
    scan walks quote pairs instead of naively splitting on commas.
    """
    value = value.strip()
    if not value:
        return None
    if value == "*":
        return ["*"]
    tags: list[str] = []
    position = 0
    length = len(value)
    while position < length:
        while position < length and value[position] in " \t,":
            position += 1
        if position >= length:
            break
        start = position
        if value.startswith("W/", position):
            position += 2
        if position >= length or value[position] != '"':
            return None
        closing = value.find('"', position + 1)
        if closing < 0:
            return None
        position = closing + 1
        tags.append(value[start:position])
    return tags or None


def _is_weak(tag: str) -> bool:
    return tag.startswith("W/")


def _opaque(tag: str) -> str:
    """The quoted opaque part of a tag, with any weak prefix removed."""
    return tag[2:] if _is_weak(tag) else tag


def etag_strong_match(candidate: str, current: str) -> bool:
    """RFC 7232 §2.3.2 strong comparison: equal octets, neither tag weak."""
    if _is_weak(candidate) or _is_weak(current):
        return False
    return candidate == current


def etag_weak_match(candidate: str, current: str) -> bool:
    """RFC 7232 §2.3.2 weak comparison: equal opaque parts, weakness ignored."""
    return _opaque(candidate) == _opaque(current)


def if_none_match_matches(value: str, etag: str) -> bool:
    """Whether an ``If-None-Match`` value forbids returning the selected
    representation (GET/HEAD answer: 304).

    Uses the *weak* comparison (RFC 7232 §3.2): a cache revalidating a
    stored response cares about equivalence, not byte identity.  Malformed
    lists answer False (serve the full response — never incorrect).
    """
    tags = parse_etag_list(value)
    if tags is None:
        return False
    if tags == ["*"]:
        return True
    return any(etag_weak_match(tag, etag) for tag in tags)


def if_match_matches(value: str, etag: str) -> bool:
    """Whether an ``If-Match`` precondition holds for the current ``etag``.

    Uses the *strong* comparison (RFC 7232 §3.1): If-Match guards state-
    changing requests against lost updates, where "equivalent" is not good
    enough.  A failed (or malformed) precondition answers False and the
    response becomes a 412.
    """
    tags = parse_etag_list(value)
    if tags is None:
        return False
    if tags == ["*"]:
        return True
    return any(etag_strong_match(tag, etag) for tag in tags)


def if_unmodified_since_matches(value: str, mtime: float) -> bool:
    """Whether an ``If-Unmodified-Since`` precondition holds.

    True when the file has *not* been modified after the supplied date,
    compared at the second granularity ``Last-Modified`` is expressed in
    (see :func:`serialized_timestamp`).  RFC 7232 §3.4: an unparseable
    value means the header must be ignored, so it answers True (the
    precondition does not fail).
    """
    parsed = _parse_http_date(value)
    if parsed is None:
        return True
    return serialized_timestamp(mtime) <= parsed.timestamp()


def _parse_http_date(value: str):
    """Parse an HTTP date to an aware datetime, or ``None`` when malformed."""
    try:
        parsed = email.utils.parsedate_to_datetime(value)
    except (TypeError, ValueError, OverflowError):
        return None
    if parsed is None:
        return None
    if parsed.tzinfo is None:
        from datetime import timezone

        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def if_modified_since_matches(value: str, mtime: float) -> bool:
    """Whether an ``If-Modified-Since`` value makes a 304 the right answer.

    The common case — the client echoing back exactly the ``Last-Modified``
    string the server sent — is decided by string comparison; anything else
    is parsed as an HTTP date and compared at second granularity (the
    granularity ``Last-Modified`` is expressed in), using the same
    truncation the header serializer applies to ``mtime`` (see
    :func:`serialized_timestamp`).  Unparseable values answer False, which
    degrades to a full 200 response (never incorrect, only less efficient —
    the same behaviour production servers choose).
    """
    if value == http_date(mtime):
        return True
    parsed = _parse_http_date(value)
    if parsed is None:
        return False
    return serialized_timestamp(mtime) <= parsed.timestamp()


def if_range_matches(value: str, mtime: float, etag: Optional[str] = None) -> bool:
    """Whether an ``If-Range`` validator still selects the current file.

    RFC 7233 §3.2 admits both validator forms, each under the *strong*
    comparison — unlike ``If-Modified-Since``, "not newer" is not good
    enough, because a mismatch means the client's partial copy may be of
    different bytes:

    * an entity-tag form (the value starts with ``"`` or ``W/``) matches
      only on a strong ETag comparison with ``etag`` — a weak tag never
      matches, per §2.3.2;
    * a Date form matches only on an *exact* match with the
      representation's ``Last-Modified`` second.

    Unparseable values answer False, which degrades the Range request to a
    full 200 — always a correct answer, per the RFC.
    """
    value = value.strip()
    if not value:
        return False
    if value.startswith('"') or value.startswith("W/"):
        return etag is not None and etag_strong_match(value, etag)
    if value == http_date(mtime):
        return True
    parsed = _parse_http_date(value)
    if parsed is None:
        return False
    return serialized_timestamp(mtime) == parsed.timestamp()


def content_range(offset: int, length: int, size: int) -> str:
    """The ``Content-Range`` value for a satisfied range (RFC 7233 §4.2)."""
    return f"bytes {offset}-{offset + length - 1}/{size}"


def content_range_unsatisfied(size: int) -> str:
    """The ``Content-Range`` value carried by a 416 (RFC 7233 §4.4)."""
    return f"bytes */{size}"


# -- multipart/byteranges framing (RFC 7233 §4.1 / Appendix A) ----------------

def multipart_boundary(etag: str, windows: Sequence[tuple[int, int]]) -> str:
    """A boundary string for a multipart/byteranges response.

    Deterministic by design: derived from the representation's entity-tag
    and the requested windows, so the same multi-range request against the
    same file bytes produces byte-identical responses across architectures
    and cache toggles — the property the parity tests pin down.  (A
    deterministic boundary could in principle be embedded in adversarial
    file content; the digest makes that require engineering a collision
    against the file's own validator, which static workloads do not do.)
    """
    digest = hashlib.sha256()
    digest.update(etag.encode("latin-1"))
    for offset, length in windows:
        digest.update(b"%d-%d;" % (offset, length))
    return "flashrepro" + digest.hexdigest()[:24]


def multipart_part_head(
    boundary: str,
    content_type: str,
    offset: int,
    length: int,
    size: int,
    *,
    first: bool = False,
) -> bytes:
    """The framing that precedes one body part of a multipart 206.

    Every part after the first is introduced by the CRLF that terminates
    the previous part's bytes (the delimiter is ``CRLF "--" boundary``,
    RFC 2046 §5.1.1); the first part omits it so the body starts directly
    with the dash-boundary, matching the RFC 7233 Appendix A example.
    """
    lead = b"" if first else b"\r\n"
    return lead + (
        f"--{boundary}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Range: {content_range(offset, length, size)}\r\n"
        "\r\n"
    ).encode("latin-1")


def multipart_trailer(boundary: str) -> bytes:
    """The closing delimiter that ends a multipart/byteranges body."""
    return f"\r\n--{boundary}--\r\n".encode("latin-1")


@dataclass(frozen=True)
class ResponseHeader:
    """An encoded response header together with its metadata.

    Attributes
    ----------
    raw:
        The encoded header bytes, terminated by the blank line.
    status:
        Status code of the response.
    content_length:
        Value of the Content-Length field (0 for bodyless responses).
    padding:
        Number of padding bytes that were added to reach the alignment.
    """

    raw: bytes
    status: int
    content_length: int
    padding: int

    def __len__(self) -> int:
        return len(self.raw)

    @property
    def aligned(self) -> bool:
        """True when the encoded length is a multiple of the alignment used."""
        return self.padding >= 0 and len(self.raw) % DEFAULT_ALIGNMENT == 0


class ResponseHeaderBuilder:
    """Builds (and optionally aligns) HTTP response headers.

    Parameters
    ----------
    server_name:
        Value of the ``Server`` header before padding.
    align:
        Alignment in bytes; ``0`` or ``1`` disables the optimization, which
        is how the "misaligned" configurations in the evaluation are built.
    version:
        HTTP version advertised in the status line.
    """

    def __init__(
        self,
        server_name: str = SERVER_NAME,
        align: int = DEFAULT_ALIGNMENT,
        version: str = "HTTP/1.1",
    ):
        if align < 0:
            raise ValueError("alignment must be non-negative")
        self.server_name = server_name
        self.align = align
        self.version = version

    def build(
        self,
        status: int = 200,
        *,
        content_length: int = 0,
        content_type: str = "text/html",
        last_modified: float | None = None,
        date: float | None = None,
        keep_alive: bool = False,
        etag: str | None = None,
        accept_ranges: bool = False,
        cache_max_age: int | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> ResponseHeader:
        """Build a response header.

        The header is padded (by extending the ``Server`` field) so that its
        total encoded length is a multiple of :attr:`align`, reproducing the
        byte-position alignment optimization of Section 5.5.  ``etag``
        (already quoted, see :func:`make_etag`) is emitted verbatim;
        ``accept_ranges`` advertises byte-range support — the static
        pipeline sets it on its 200s, while CGI and error responses (which
        the range machinery never serves) leave it off.  ``cache_max_age``
        emits an explicit freshness lifetime (``Cache-Control: max-age=N``
        plus the ``Expires`` fallback for HTTP/1.0 caches); ``Expires`` is
        derived from the same instant as ``Date`` so the pair stays
        mutually consistent even when the header is served from the
        response-header cache later.
        """
        lines = [f"{self.version} {status} {reason_phrase(status)}"]
        lines.append(f"Date: {http_date(date)}")
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {content_length}")
        if last_modified is not None:
            lines.append(f"Last-Modified: {http_date(last_modified)}")
        if etag is not None:
            lines.append(f"ETag: {etag}")
        if accept_ranges:
            lines.append("Accept-Ranges: bytes")
        if cache_max_age is not None:
            base = time.time() if date is None else date
            lines.append(f"Cache-Control: max-age={cache_max_age}")
            lines.append(f"Expires: {http_date(base + cache_max_age)}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        if extra_headers:
            for name, value in extra_headers.items():
                lines.append(f"{name}: {value}")
        server_line_index = len(lines)
        lines.append(f"Server: {self.server_name}")

        encoded = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        padding = 0
        if self.align > 1:
            remainder = len(encoded) % self.align
            if remainder:
                padding = self.align - remainder
                lines[server_line_index] = (
                    f"Server: {self.server_name}{' ' * padding}"
                )
                encoded = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return ResponseHeader(
            raw=encoded,
            status=status,
            content_length=content_length,
            padding=padding,
        )

    def build_stream(
        self,
        status: int = 200,
        *,
        content_type: str = "text/html",
        chunked: bool = True,
        keep_alive: bool = False,
        date: float | None = None,
        cache_control: str | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> ResponseHeader:
        """Build a header for a body whose length is unknown up front.

        The streaming counterpart of :meth:`build`: no ``Content-Length``
        is emitted.  With ``chunked`` (HTTP/1.1 consumers) the body is
        delimited by ``Transfer-Encoding: chunked`` framing and the
        connection may be kept alive; without it (the HTTP/1.0 fallback)
        the *connection close* delimits the body, so ``keep_alive`` is
        forced off regardless of what the caller asked for.  The header
        keeps the Section 5.5 alignment padding so streamed headers go
        through the same aligned-write path as everything else.
        """
        if not chunked:
            keep_alive = False
        lines = [f"{self.version} {status} {reason_phrase(status)}"]
        lines.append(f"Date: {http_date(date)}")
        lines.append(f"Content-Type: {content_type}")
        if chunked:
            lines.append("Transfer-Encoding: chunked")
        if cache_control is not None:
            lines.append(f"Cache-Control: {cache_control}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        if extra_headers:
            for name, value in extra_headers.items():
                lines.append(f"{name}: {value}")
        server_line_index = len(lines)
        lines.append(f"Server: {self.server_name}")

        encoded = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        padding = 0
        if self.align > 1:
            remainder = len(encoded) % self.align
            if remainder:
                padding = self.align - remainder
                lines[server_line_index] = (
                    f"Server: {self.server_name}{' ' * padding}"
                )
                encoded = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return ResponseHeader(
            raw=encoded,
            status=status,
            content_length=-1,
            padding=padding,
        )


def build_error_response(
    status: int,
    message: str = "",
    *,
    builder: ResponseHeaderBuilder | None = None,
    keep_alive: bool = False,
) -> bytes:
    """Build a complete error response (header + small HTML body).

    All four server architectures use this helper so error handling is
    byte-for-byte identical across them, as required by the paper's
    "same code base" methodology (Section 6).
    """
    builder = builder or ResponseHeaderBuilder()
    reason = reason_phrase(status)
    body = (
        "<html><head><title>{code} {reason}</title></head>"
        "<body><h1>{code} {reason}</h1><p>{message}</p></body></html>\n"
    ).format(code=status, reason=reason, message=message or reason).encode("latin-1")
    header = builder.build(
        status,
        content_length=len(body),
        content_type="text/html",
        keep_alive=keep_alive,
    )
    return header.raw + body

"""MIME type mapping for static content.

The Flash server, like the 1999 servers it is compared against, determines
the ``Content-Type`` of a static response from the file extension.  The table
below covers the extensions present in the paper's workloads (departmental
web pages: HTML, images, postscript/PDF papers, tarballs) plus the usual
modern additions.
"""

from __future__ import annotations

import posixpath

#: Extension (lower-case, without dot) to MIME type.
MIME_TYPES = {
    "html": "text/html",
    "htm": "text/html",
    "shtml": "text/html",
    "txt": "text/plain",
    "text": "text/plain",
    "css": "text/css",
    "csv": "text/csv",
    "xml": "text/xml",
    "js": "application/javascript",
    "json": "application/json",
    "gif": "image/gif",
    "jpg": "image/jpeg",
    "jpeg": "image/jpeg",
    "png": "image/png",
    "bmp": "image/bmp",
    "ico": "image/x-icon",
    "svg": "image/svg+xml",
    "tif": "image/tiff",
    "tiff": "image/tiff",
    "ps": "application/postscript",
    "eps": "application/postscript",
    "pdf": "application/pdf",
    "doc": "application/msword",
    "dvi": "application/x-dvi",
    "tex": "application/x-tex",
    "tar": "application/x-tar",
    "gz": "application/gzip",
    "tgz": "application/gzip",
    "zip": "application/zip",
    "bz2": "application/x-bzip2",
    "mp3": "audio/mpeg",
    "wav": "audio/x-wav",
    "au": "audio/basic",
    "mpg": "video/mpeg",
    "mpeg": "video/mpeg",
    "mov": "video/quicktime",
    "avi": "video/x-msvideo",
    "mp4": "video/mp4",
    "bin": "application/octet-stream",
    "exe": "application/octet-stream",
    "class": "application/octet-stream",
    "c": "text/plain",
    "h": "text/plain",
    "py": "text/plain",
    "md": "text/plain",
}

#: Content type used when the extension is unknown or missing.
DEFAULT_MIME_TYPE = "application/octet-stream"


def guess_mime_type(path: str, default: str = DEFAULT_MIME_TYPE) -> str:
    """Return the MIME type for ``path`` based on its extension.

    Parameters
    ----------
    path:
        A file name or path; only the final extension is examined.
    default:
        Value returned when the extension is not recognized.

    Examples
    --------
    >>> guess_mime_type("/home/users/bob/public_html/index.html")
    'text/html'
    >>> guess_mime_type("archive.tar.gz")
    'application/gzip'
    >>> guess_mime_type("Makefile")
    'application/octet-stream'
    """
    name = posixpath.basename(path)
    if "." not in name:
        return default
    ext = name.rsplit(".", 1)[1].lower()
    return MIME_TYPES.get(ext, default)

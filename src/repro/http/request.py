"""Incremental HTTP request parsing.

The "Read request" step of the paper's pipeline (Figure 1) reads the HTTP
request header from the client connection's socket and parses it for the
requested URL and options.  Because the servers in this reproduction are
event driven (SPED/AMPED) or at least non-blocking per connection, the
parser must accept data incrementally: a client on a slow link may deliver
the request line in several TCP segments, and the event loop must not block
waiting for the rest.

:class:`RequestParser` therefore exposes a ``feed()`` interface: the server
hands it whatever bytes ``recv()`` produced and asks whether a complete
request is available yet.

Fast-path probing
-----------------

The overwhelmingly common request on a cached workload is a small
``GET <target> HTTP/1.x`` with a handful of unremarkable headers.  Building
a full :class:`HTTPRequest` for it — decoding the block, splitting header
lines, populating a dict, normalizing the URI — is almost pure allocation
overhead when the server's hot-response cache already knows the answer for
the raw target bytes.  :func:`probe_fast_request` therefore recognizes that
shape directly on the parse buffer: it extracts the raw target and the
keep-alive disposition with a few C-level ``find`` calls and *no* header
dict, request object or URI normalization.  Anything unusual — other
methods, query strings, percent-escapes, dot segments, conditional or
range headers, header folding, bare-LF line endings — makes the probe
decline, and the request takes the existing full parser, byte-identically.

A parser constructed with ``fast=True`` runs the probe first and exposes
the result as :attr:`RequestParser.fast_request`; the full
:class:`HTTPRequest` is still available lazily through
:attr:`RequestParser.request` (materialized from the retained header block)
for callers whose hot-cache lookup misses.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.http.errors import (
    BadRequestError,
    NotImplementedError_,
    RequestTooLargeError,
    VersionNotSupportedError,
)
from repro.http.uri import normalize_uri, split_query

#: Methods the static-content pipeline understands.  Everything else gets 501.
SUPPORTED_METHODS = ("GET", "HEAD", "POST")

#: Versions the response generator knows how to answer.
SUPPORTED_VERSIONS = ("HTTP/0.9", "HTTP/1.0", "HTTP/1.1")

#: Default cap on the size of a request header block, matching the defensive
#: limits production servers of the era used (Apache: 8 KB per line).
DEFAULT_MAX_HEADER_BYTES = 16 * 1024

#: Largest header block the fast probe will examine; bigger requests are
#: unusual enough that the full parser should look at them anyway.
FAST_PROBE_LIMIT = 4096

#: Longest request target the fast probe accepts (hot-cache keys are the
#: raw target bytes, so unbounded targets would let a client balloon them).
FAST_TARGET_LIMIT = 512

#: Header names whose presence must force the full parser: they change how
#: the request is interpreted (body framing, conditionals) in ways the fast
#: path deliberately does not implement.  Conditional headers are matched
#: by their ``if-`` prefix instead of appearing here.
_SLOW_HEADER_NAMES = frozenset(
    (
        b"content-length",
        b"transfer-encoding",
        b"range",
        b"expect",
        b"upgrade",
    )
)

#: Byte substrings that disqualify a target from the fast path: queries and
#: escapes need decoding, ``/.`` covers ``.``/``..`` segments (and
#: conservatively dotfiles), ``//`` needs slash collapsing, and spaces mean
#: the request line had more than three words.  All of them simply fall
#: back to the full parser, which handles them exactly as before.
_SLOW_TARGET_MARKS = (b"?", b"%", b"#", b" ", b"\\", b"\x00", b"//", b"/.")

#: Dynamic-content prefix; matches :attr:`HTTPRequest.is_cgi`.
_CGI_PREFIX = b"/cgi-bin/"

#: Sentinel returned by :func:`probe_fast_request` when the request shape is
#: definitively unsupported (as opposed to "need more bytes", which is None).
FAST_MISS = object()

#: Sentinel returned by :func:`parse_range`/:func:`parse_ranges` when the
#: Range header is syntactically valid but no requested byte lies inside the
#: representation (RFC 7233 §4.4): the response must be a 416 with
#: ``Content-Range: bytes */<size>``.
RANGE_UNSATISFIABLE = object()

#: Cap on byte-range specs honoured per request.  An attacker can pack
#: thousands of tiny ranges into one header and multiply the response
#: (every part repeats the multipart framing); past the cap the header is
#: simply ignored and the full representation is served — the defensive
#: choice production servers make (RFC 7233 §6.1 explicitly sanctions it).
MAX_RANGE_PARTS = 32

#: Internal sentinel: one spec inside a byte-range-set was syntactically
#: invalid, which invalidates the whole header (RFC 7233 §3.1).
_RANGE_INVALID = object()


def _parse_one_range_spec(spec: str, size: int):
    """Parse one ``byte-range-spec`` against a ``size``-byte representation.

    Returns a clamped ``(offset, length)`` window, :data:`RANGE_UNSATISFIABLE`
    when the spec is valid but selects no byte, or :data:`_RANGE_INVALID`
    when it is not a byte-range-spec at all.
    """
    first, dash, last = spec.partition("-")
    if not dash:
        return _RANGE_INVALID
    first = first.strip()
    last = last.strip()
    if not first:
        # Suffix form: the final N bytes.
        if not last.isdigit():
            return _RANGE_INVALID
        suffix = int(last)
        if suffix == 0 or size <= 0:
            return RANGE_UNSATISFIABLE
        length = min(suffix, size)
        return size - length, length
    if not first.isdigit():
        return _RANGE_INVALID
    start = int(first)
    if last:
        if not last.isdigit():
            return _RANGE_INVALID
        end = int(last)
        if end < start:
            return _RANGE_INVALID
    else:
        end = size - 1
    if start >= size:
        return RANGE_UNSATISFIABLE
    end = min(end, size - 1)
    return start, end - start + 1


def parse_ranges(value: str, size: int):
    """Parse a ``Range`` header value against a ``size``-byte representation.

    Implements the byte-range forms of RFC 7233, including comma-separated
    range sets:

    * ``bytes=first-last`` — clamped to the representation
      (``last >= size`` truncates to the final byte);
    * ``bytes=first-`` — from ``first`` to the end;
    * ``bytes=-N`` — the final ``N`` bytes (the whole file when ``N`` is
      larger than it);
    * any comma-separated combination of the above, preserved in request
      order (RFC 7233 §4.1 permits parts in any order, and a client that
      asked for a specific order presumably wants it).

    Overlapping and adjacent windows are coalesced (RFC 7233 §4.1: "it
    ought to be coalesced into a single range ... a client cannot rely on
    receiving the same ranges that it requested"), so ``bytes=0-4,5-9``
    is served as one ten-byte part rather than a two-part multipart body;
    windows separated by a gap stay distinct.  Coalescing keeps
    first-occurrence order — only genuinely disjoint windows remain, and
    each sits where its earliest member appeared in the request.

    Returns
    -------
    A list of satisfiable ``(offset, length)`` windows — a single-element
    list for a plain single range *and* for a multi-range set in which only
    one spec is satisfiable (the caller collapses that case to an ordinary
    206); ``None`` when the header must be *ignored* and the response
    degrades to a full 200 — non-``bytes`` units, any syntactically invalid
    spec in the set (RFC 7233 §3.1: an invalid set invalidates the whole
    header), or more than :data:`MAX_RANGE_PARTS` specs;
    :data:`RANGE_UNSATISFIABLE` when every spec is valid but none selects a
    byte — ``first >= size``, a zero-length suffix, or any range against an
    empty file — which must become a 416.
    """
    if not value:
        return None
    unit, sep, spec = value.partition("=")
    if not sep or unit.strip().lower() != "bytes":
        return None
    specs = [item.strip() for item in spec.split(",")]
    specs = [item for item in specs if item]
    if not specs or len(specs) > MAX_RANGE_PARTS:
        return None
    windows: list[tuple[int, int]] = []
    unsatisfiable = False
    for item in specs:
        window = _parse_one_range_spec(item, size)
        if window is _RANGE_INVALID:
            return None
        if window is RANGE_UNSATISFIABLE:
            unsatisfiable = True
            continue
        windows.append(window)
    if windows:
        return _coalesce_windows(windows)
    return RANGE_UNSATISFIABLE if unsatisfiable else None


def _coalesce_windows(windows: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent ``(offset, length)`` windows to a fixed point.

    Iterated because one merge can bridge two previously disjoint windows
    (``0-4, 10-14, 5-9`` collapses to one); bounded by
    :data:`MAX_RANGE_PARTS` inputs, so the quadratic worst case is tiny.
    """
    merged = True
    while merged:
        merged = False
        coalesced: list[tuple[int, int]] = []
        for offset, length in windows:
            for index, (seen_offset, seen_length) in enumerate(coalesced):
                # Overlapping or touching: [a, a+la] and [b, b+lb] unify
                # whenever neither window starts past the other's end.
                if offset <= seen_offset + seen_length and seen_offset <= offset + length:
                    start = min(seen_offset, offset)
                    end = max(seen_offset + seen_length, offset + length)
                    coalesced[index] = (start, end - start)
                    merged = True
                    break
            else:
                coalesced.append((offset, length))
        windows = coalesced
    return windows


def parse_range(value: str, size: int):
    """Deprecated single-window shim over :func:`parse_ranges`.

    The pipeline serves multi-range sets through ``multipart/byteranges``,
    so every production caller migrated to :func:`parse_ranges`; this shim
    survives one release for out-of-tree callers and rejects (``None``)
    any set it cannot express as one ``(offset, length)`` window.
    """
    warnings.warn(
        "parse_range() is deprecated; call parse_ranges(), which returns "
        "the full coalesced window list",
        DeprecationWarning,
        stacklevel=2,
    )
    if value and "," in value:
        return None
    windows = parse_ranges(value, size)
    if windows is None or windows is RANGE_UNSATISFIABLE:
        return windows
    return windows[0]


class FastRequest:
    """The result of a successful fast probe: just enough to consult the
    hot-response cache.

    Attributes
    ----------
    target:
        The raw request-target bytes exactly as they appeared on the wire
        (the hot-response cache key).
    keep_alive:
        The connection disposition, computed with the same rules as
        :attr:`HTTPRequest.keep_alive`.
    """

    __slots__ = ("target", "keep_alive")

    def __init__(self, target: bytes, keep_alive: bool):
        self.target = target
        self.keep_alive = keep_alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FastRequest(target={self.target!r}, keep_alive={self.keep_alive})"


def probe_fast_request(data):
    """Recognize a plain ``GET <target> HTTP/1.x`` request without parsing it.

    Parameters
    ----------
    data:
        The accumulated receive buffer (``bytes`` or ``bytearray``).

    Returns
    -------
    ``None`` when no CRLF-terminated header block is complete yet (feed more
    bytes and probe again); :data:`FAST_MISS` when the block is complete but
    the shape is unsupported (hand the buffer to the full parser); otherwise
    a ``(FastRequest, header_end)`` pair where ``header_end`` is the offset
    one past the terminating blank line.

    The probe is deliberately conservative: *any* doubt — unusual method or
    version, decodable target, conditional/range/body headers, folded or
    malformed header lines — returns :data:`FAST_MISS` so the full parser
    decides, keeping fast-on and fast-off behaviour byte-identical.
    """
    end = data.find(b"\r\n\r\n", 0, FAST_PROBE_LIMIT)
    if end < 0:
        if len(data) >= FAST_PROBE_LIMIT:
            return FAST_MISS
        return None
    if not data.startswith(b"GET /"):
        return FAST_MISS
    # Every line break in the block must be a CRLF pair.  A bare LF inside
    # a line is a line break to the full parser (which splits on both) but
    # line *content* to the CRLF-delimited scan below — the probe would
    # read a different header structure than the parser, so it declines.
    if data.count(b"\n", 0, end) != data.count(b"\r\n", 0, end):
        return FAST_MISS
    eol = data.find(b"\r\n")
    separator = data.rfind(b" ", 4, eol)
    if separator <= 4:
        return FAST_MISS
    version = data[separator + 1 : eol]
    if version == b"HTTP/1.1":
        keep_alive = True
    elif version == b"HTTP/1.0":
        keep_alive = False
    else:
        return FAST_MISS
    if separator - 4 > FAST_TARGET_LIMIT:
        return FAST_MISS
    target = bytes(data[4:separator])
    for mark in _SLOW_TARGET_MARKS:
        if mark in target:
            return FAST_MISS
    if target.startswith(_CGI_PREFIX):
        return FAST_MISS

    # Walk the header lines with C-level finds.  Every line must be a
    # well-formed ``Name: value`` (so a fast accept can never mask a 400
    # the full parser would have produced), must not be a folded
    # continuation, and must not name anything in the slow set.
    position = eol + 2
    connection_value = None
    while position < end:
        newline = data.find(b"\r\n", position, end)
        line_end = end if newline < 0 else newline
        first = data[position]
        if first == 0x20 or first == 0x09:  # folded header: full parser's job
            return FAST_MISS
        colon = data.find(b":", position, line_end)
        if colon <= position:
            return FAST_MISS
        name = bytes(data[position:colon]).strip().lower()
        if not name or name in _SLOW_HEADER_NAMES or name.startswith(b"if-"):
            return FAST_MISS
        if name == b"connection":
            connection_value = bytes(data[colon + 1 : line_end]).strip().lower()
        position = line_end + 2

    if connection_value is not None:
        if keep_alive:  # HTTP/1.1: persistent unless an explicit close
            keep_alive = connection_value != b"close"
        else:  # HTTP/1.0: persistent only on an explicit keep-alive
            keep_alive = connection_value == b"keep-alive"
    return FastRequest(target, keep_alive), end + 4


@dataclass
class HTTPRequest:
    """A fully parsed HTTP request header.

    Attributes
    ----------
    method:
        Upper-cased request method (``GET``, ``HEAD``, ``POST``).
    uri:
        The raw request URI as sent by the client.
    path:
        The normalized path component (percent-decoded, ``..`` resolved).
    query:
        The query string (without the ``?``), empty if absent.
    version:
        The HTTP version string, e.g. ``HTTP/1.1``.
    headers:
        Header fields with lower-cased names.
    body:
        Request body bytes (only populated for POST with Content-Length).
    """

    method: str
    uri: str
    path: str
    query: str = ""
    version: str = "HTTP/1.0"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should persist after this response.

        HTTP/1.1 defaults to persistent connections unless the client sends
        ``Connection: close``; HTTP/1.0 requires an explicit
        ``Connection: keep-alive``.  Persistent connections matter for the
        paper's WAN experiment (Section 6.4), where they are used to emulate
        long-lived connections in a LAN testbed.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"

    @property
    def is_head(self) -> bool:
        """True when only the response header should be sent."""
        return self.method == "HEAD"

    @property
    def is_cgi(self) -> bool:
        """True when the request targets the dynamic-content prefix."""
        return self.path.startswith("/cgi-bin/")

    @property
    def if_modified_since(self) -> str | None:
        """The If-Modified-Since header value, if any."""
        return self.headers.get("if-modified-since")

    @property
    def if_none_match(self) -> str | None:
        """The If-None-Match header value, if any (RFC 7232 §3.2)."""
        return self.headers.get("if-none-match")

    @property
    def if_match(self) -> str | None:
        """The If-Match header value, if any (RFC 7232 §3.1)."""
        return self.headers.get("if-match")

    @property
    def if_unmodified_since(self) -> str | None:
        """The If-Unmodified-Since header value, if any (RFC 7232 §3.4)."""
        return self.headers.get("if-unmodified-since")

    @property
    def range_header(self) -> str | None:
        """The raw Range header value, if any (see :func:`parse_ranges`)."""
        return self.headers.get("range")

    @property
    def if_range(self) -> str | None:
        """The If-Range header value, if any."""
        return self.headers.get("if-range")

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


class RequestParser:
    """Incremental parser turning raw socket bytes into :class:`HTTPRequest`.

    Usage::

        parser = RequestParser()
        parser.feed(sock.recv(4096))
        if parser.complete:
            request = parser.request

    The parser retains any bytes following the parsed request (pipelined
    requests on a persistent connection) in :attr:`remainder`; callers reuse
    them by calling :meth:`reset` and feeding the remainder first (or by
    constructing a fresh parser).

    With ``fast=True`` the parser first offers each buffer to
    :func:`probe_fast_request`; on a hit, :attr:`fast_request` is set, the
    parser reports :attr:`complete`, and no :class:`HTTPRequest` is built
    unless a caller actually asks for :attr:`request` (hot-cache miss).
    """

    def __init__(
        self,
        max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
        fast: bool = False,
    ):
        self.max_header_bytes = max_header_bytes
        self._fast_enabled = fast
        self._buffer = bytearray()
        self._request: HTTPRequest | None = None
        self._body_needed = 0
        self._headers_done = False
        self._fast_possible = fast
        self.fast_request: FastRequest | None = None
        self.remainder = b""

    def reset(self) -> None:
        """Ready the parser for the next request on the same connection.

        Equivalent to constructing a new parser with the same settings, but
        without the object churn — the connection state machine calls this
        once per keep-alive response.
        """
        self._buffer.clear()
        self._request = None
        self._body_needed = 0
        self._headers_done = False
        self._fast_possible = self._fast_enabled
        self.fast_request = None
        self.remainder = b""

    @property
    def complete(self) -> bool:
        """True when a full request (header and any body) has been parsed."""
        return (
            self._request is not None or self.fast_request is not None
        ) and self._body_needed == 0

    @property
    def request(self) -> HTTPRequest:
        """The parsed request.  Only valid when :attr:`complete` is True.

        After a fast-probe hit the full object is materialized lazily from
        the retained header block, so callers that never need it (hot-cache
        hits) never pay for it — and callers that do get exactly the object
        the full parser would have produced.
        """
        if self._body_needed:
            raise ValueError("request is not complete")
        if self._request is None:
            if self.fast_request is None:
                raise ValueError("request is not complete")
            self._request = self._parse_header_block(bytes(self._buffer))
        return self._request

    def feed(self, data: bytes) -> bool:
        """Add ``data`` to the parse buffer; return :attr:`complete`.

        Raises an :class:`repro.http.errors.HTTPError` subclass when the
        request is malformed, too large, or uses an unsupported method or
        version.  The caller converts that into an error response.
        """
        if self.complete:
            self.remainder += data
            return True
        self._buffer.extend(data)
        if self._fast_possible and not self._headers_done:
            probed = probe_fast_request(self._buffer)
            if probed is FAST_MISS:
                self._fast_possible = False
            elif probed is not None:
                fast, header_end = probed
                self.fast_request = fast
                self._headers_done = True
                self.remainder = bytes(self._buffer[header_end:])
                # Keep only the header block (sans blank line): it is the
                # substrate for lazy materialization in :attr:`request`.
                del self._buffer[header_end - 4 :]
                return True
        if not self._headers_done:
            self._try_parse_headers()
        if self._headers_done and self._body_needed:
            self._consume_body()
        return self.complete

    def _try_parse_headers(self) -> None:
        end = self._buffer.find(b"\r\n\r\n")
        sep_len = 4
        if end < 0:
            end = self._buffer.find(b"\n\n")
            sep_len = 2
        if end < 0:
            if len(self._buffer) > self.max_header_bytes:
                raise RequestTooLargeError(
                    f"request header exceeds {self.max_header_bytes} bytes"
                )
            return
        header_block = bytes(self._buffer[:end])
        rest = bytes(self._buffer[end + sep_len:])
        self._buffer = bytearray()
        self._request = self._parse_header_block(header_block)
        self._headers_done = True
        content_length = self._request.headers.get("content-length")
        if self._request.method == "POST" and content_length:
            try:
                self._body_needed = int(content_length)
            except ValueError as exc:
                raise BadRequestError("invalid Content-Length") from exc
            if self._body_needed < 0:
                raise BadRequestError("negative Content-Length")
        if self._body_needed:
            self._buffer = bytearray(rest)
            self._consume_body()
        else:
            self.remainder = rest

    def _consume_body(self) -> None:
        assert self._request is not None
        take = min(self._body_needed, len(self._buffer))
        self._request.body += bytes(self._buffer[:take])
        self._body_needed -= take
        leftover = bytes(self._buffer[take:])
        self._buffer = bytearray()
        if self._body_needed == 0:
            self.remainder = leftover
        else:
            self._buffer = bytearray(leftover)

    @staticmethod
    def _parse_header_block(block: bytes) -> HTTPRequest:
        try:
            text = block.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
            raise BadRequestError("undecodable request header") from exc
        lines = text.replace("\r\n", "\n").split("\n")
        request_line = lines[0].strip()
        if not request_line:
            raise BadRequestError("empty request line")
        parts = request_line.split()
        if len(parts) == 2:
            # HTTP/0.9 simple request: "GET /path"
            method, uri = parts
            version = "HTTP/0.9"
        elif len(parts) == 3:
            method, uri, version = parts
        else:
            raise BadRequestError(f"malformed request line: {request_line!r}")
        method = method.upper()
        if method not in SUPPORTED_METHODS:
            raise NotImplementedError_(f"method not implemented: {method}")
        if version not in SUPPORTED_VERSIONS:
            raise VersionNotSupportedError(f"unsupported version: {version}")

        headers: dict[str, str] = {}
        last_name: str | None = None
        for raw in lines[1:]:
            if not raw.strip():
                continue
            if raw[0] in (" ", "\t") and last_name is not None:
                # Obsolete header folding: continuation of the previous field.
                headers[last_name] += " " + raw.strip()
                continue
            if ":" not in raw:
                raise BadRequestError(f"malformed header line: {raw!r}")
            name, _, value = raw.partition(":")
            name = name.strip().lower()
            if not name:
                raise BadRequestError(f"empty header name: {raw!r}")
            headers[name] = value.strip()
            last_name = name

        raw_path, query = split_query(uri)
        path = normalize_uri(raw_path)
        return HTTPRequest(
            method=method,
            uri=uri,
            path=path,
            query=query,
            version=version,
            headers=headers,
        )

"""Incremental HTTP request parsing.

The "Read request" step of the paper's pipeline (Figure 1) reads the HTTP
request header from the client connection's socket and parses it for the
requested URL and options.  Because the servers in this reproduction are
event driven (SPED/AMPED) or at least non-blocking per connection, the
parser must accept data incrementally: a client on a slow link may deliver
the request line in several TCP segments, and the event loop must not block
waiting for the rest.

:class:`RequestParser` therefore exposes a ``feed()`` interface: the server
hands it whatever bytes ``recv()`` produced and asks whether a complete
request is available yet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http.errors import (
    BadRequestError,
    NotImplementedError_,
    RequestTooLargeError,
    VersionNotSupportedError,
)
from repro.http.uri import normalize_uri, split_query

#: Methods the static-content pipeline understands.  Everything else gets 501.
SUPPORTED_METHODS = ("GET", "HEAD", "POST")

#: Versions the response generator knows how to answer.
SUPPORTED_VERSIONS = ("HTTP/0.9", "HTTP/1.0", "HTTP/1.1")

#: Default cap on the size of a request header block, matching the defensive
#: limits production servers of the era used (Apache: 8 KB per line).
DEFAULT_MAX_HEADER_BYTES = 16 * 1024


@dataclass
class HTTPRequest:
    """A fully parsed HTTP request header.

    Attributes
    ----------
    method:
        Upper-cased request method (``GET``, ``HEAD``, ``POST``).
    uri:
        The raw request URI as sent by the client.
    path:
        The normalized path component (percent-decoded, ``..`` resolved).
    query:
        The query string (without the ``?``), empty if absent.
    version:
        The HTTP version string, e.g. ``HTTP/1.1``.
    headers:
        Header fields with lower-cased names.
    body:
        Request body bytes (only populated for POST with Content-Length).
    """

    method: str
    uri: str
    path: str
    query: str = ""
    version: str = "HTTP/1.0"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should persist after this response.

        HTTP/1.1 defaults to persistent connections unless the client sends
        ``Connection: close``; HTTP/1.0 requires an explicit
        ``Connection: keep-alive``.  Persistent connections matter for the
        paper's WAN experiment (Section 6.4), where they are used to emulate
        long-lived connections in a LAN testbed.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.1":
            return connection != "close"
        return connection == "keep-alive"

    @property
    def is_head(self) -> bool:
        """True when only the response header should be sent."""
        return self.method == "HEAD"

    @property
    def is_cgi(self) -> bool:
        """True when the request targets the dynamic-content prefix."""
        return self.path.startswith("/cgi-bin/")

    @property
    def if_modified_since(self) -> str | None:
        """The If-Modified-Since header value, if any."""
        return self.headers.get("if-modified-since")

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


class RequestParser:
    """Incremental parser turning raw socket bytes into :class:`HTTPRequest`.

    Usage::

        parser = RequestParser()
        parser.feed(sock.recv(4096))
        if parser.complete:
            request = parser.request

    The parser retains any bytes following the parsed request (pipelined
    requests on a persistent connection) in :attr:`remainder`; callers reuse
    them by constructing a new parser and feeding the remainder first.
    """

    def __init__(self, max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES):
        self.max_header_bytes = max_header_bytes
        self._buffer = bytearray()
        self._request: HTTPRequest | None = None
        self._body_needed = 0
        self._headers_done = False
        self.remainder = b""

    @property
    def complete(self) -> bool:
        """True when a full request (header and any body) has been parsed."""
        return self._request is not None and self._body_needed == 0

    @property
    def request(self) -> HTTPRequest:
        """The parsed request.  Only valid when :attr:`complete` is True."""
        if self._request is None or self._body_needed:
            raise ValueError("request is not complete")
        return self._request

    def feed(self, data: bytes) -> bool:
        """Add ``data`` to the parse buffer; return :attr:`complete`.

        Raises an :class:`repro.http.errors.HTTPError` subclass when the
        request is malformed, too large, or uses an unsupported method or
        version.  The caller converts that into an error response.
        """
        if self.complete:
            self.remainder += data
            return True
        self._buffer.extend(data)
        if not self._headers_done:
            self._try_parse_headers()
        if self._headers_done and self._body_needed:
            self._consume_body()
        return self.complete

    def _try_parse_headers(self) -> None:
        end = self._buffer.find(b"\r\n\r\n")
        sep_len = 4
        if end < 0:
            end = self._buffer.find(b"\n\n")
            sep_len = 2
        if end < 0:
            if len(self._buffer) > self.max_header_bytes:
                raise RequestTooLargeError(
                    f"request header exceeds {self.max_header_bytes} bytes"
                )
            return
        header_block = bytes(self._buffer[:end])
        rest = bytes(self._buffer[end + sep_len:])
        self._buffer = bytearray()
        self._request = self._parse_header_block(header_block)
        self._headers_done = True
        content_length = self._request.headers.get("content-length")
        if self._request.method == "POST" and content_length:
            try:
                self._body_needed = int(content_length)
            except ValueError as exc:
                raise BadRequestError("invalid Content-Length") from exc
            if self._body_needed < 0:
                raise BadRequestError("negative Content-Length")
        if self._body_needed:
            self._buffer = bytearray(rest)
            self._consume_body()
        else:
            self.remainder = rest

    def _consume_body(self) -> None:
        assert self._request is not None
        take = min(self._body_needed, len(self._buffer))
        self._request.body += bytes(self._buffer[:take])
        self._body_needed -= take
        leftover = bytes(self._buffer[take:])
        self._buffer = bytearray()
        if self._body_needed == 0:
            self.remainder = leftover
        else:
            self._buffer = bytearray(leftover)

    @staticmethod
    def _parse_header_block(block: bytes) -> HTTPRequest:
        try:
            text = block.decode("latin-1")
        except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
            raise BadRequestError("undecodable request header") from exc
        lines = text.replace("\r\n", "\n").split("\n")
        request_line = lines[0].strip()
        if not request_line:
            raise BadRequestError("empty request line")
        parts = request_line.split()
        if len(parts) == 2:
            # HTTP/0.9 simple request: "GET /path"
            method, uri = parts
            version = "HTTP/0.9"
        elif len(parts) == 3:
            method, uri, version = parts
        else:
            raise BadRequestError(f"malformed request line: {request_line!r}")
        method = method.upper()
        if method not in SUPPORTED_METHODS:
            raise NotImplementedError_(f"method not implemented: {method}")
        if version not in SUPPORTED_VERSIONS:
            raise VersionNotSupportedError(f"unsupported version: {version}")

        headers: dict[str, str] = {}
        last_name: str | None = None
        for raw in lines[1:]:
            if not raw.strip():
                continue
            if raw[0] in (" ", "\t") and last_name is not None:
                # Obsolete header folding: continuation of the previous field.
                headers[last_name] += " " + raw.strip()
                continue
            if ":" not in raw:
                raise BadRequestError(f"malformed header line: {raw!r}")
            name, _, value = raw.partition(":")
            name = name.strip().lower()
            if not name:
                raise BadRequestError(f"empty header name: {raw!r}")
            headers[name] = value.strip()
            last_name = name

        raw_path, query = split_query(uri)
        path = normalize_uri(raw_path)
        return HTTPRequest(
            method=method,
            uri=uri,
            path=path,
            query=query,
            version=version,
            headers=headers,
        )

"""HTTP protocol substrate used by every server architecture.

This package implements the subset of HTTP/1.0 and HTTP/1.1 that the Flash
paper's request-processing pipeline (Section 2 of the paper) needs:

* incremental request parsing (:mod:`repro.http.request`),
* response-header generation with the byte-position alignment optimization
  from Section 5.5 (:mod:`repro.http.response`),
* URI normalization and pathname translation (:mod:`repro.http.uri`),
* MIME type mapping (:mod:`repro.http.mime`),
* status codes and HTTP-level errors (:mod:`repro.http.errors`).
"""

from repro.http.errors import (
    BadRequestError,
    ForbiddenError,
    HTTPError,
    NotFoundError,
    NotImplementedError_,
    RequestTooLargeError,
    STATUS_REASONS,
)
from repro.http.mime import MIME_TYPES, guess_mime_type
from repro.http.request import HTTPRequest, RequestParser
from repro.http.response import ResponseHeaderBuilder, build_error_response
from repro.http.uri import normalize_uri, split_query, translate_path

__all__ = [
    "HTTPError",
    "BadRequestError",
    "ForbiddenError",
    "NotFoundError",
    "NotImplementedError_",
    "RequestTooLargeError",
    "STATUS_REASONS",
    "MIME_TYPES",
    "guess_mime_type",
    "HTTPRequest",
    "RequestParser",
    "ResponseHeaderBuilder",
    "build_error_response",
    "normalize_uri",
    "split_query",
    "translate_path",
]

"""HTTP status codes and error types.

The Flash paper's pipeline returns error responses when the requested file
does not exist, is not readable, or when the request itself is malformed.
These exceptions carry a status code so the server front end can convert
them into error responses uniformly across all four architectures.
"""

from __future__ import annotations

#: Reason phrases for the status codes the reproduction emits.
STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    206: "Partial Content",
    301: "Moved Permanently",
    302: "Found",
    304: "Not Modified",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    408: "Request Timeout",
    412: "Precondition Failed",
    413: "Request Entity Too Large",
    414: "Request-URI Too Long",
    416: "Range Not Satisfiable",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


def reason_phrase(status: int) -> str:
    """Return the standard reason phrase for ``status``.

    Unknown status codes map to ``"Unknown"`` rather than raising, because a
    server must be able to emit a response line for any integer code an
    application hands it.
    """
    return STATUS_REASONS.get(status, "Unknown")


class HTTPError(Exception):
    """Base class for errors that map directly to an HTTP error response.

    Parameters
    ----------
    status:
        The HTTP status code to report to the client.
    message:
        Human-readable detail included in the response body.
    """

    status = 500

    def __init__(self, message: str = "", status: int | None = None):
        super().__init__(message or reason_phrase(status or self.status))
        if status is not None:
            self.status = status
        self.message = message or reason_phrase(self.status)

    @property
    def reason(self) -> str:
        """The reason phrase associated with this error's status code."""
        return reason_phrase(self.status)


class BadRequestError(HTTPError):
    """The request line or headers could not be parsed (400)."""

    status = 400


class ForbiddenError(HTTPError):
    """The client is not permitted to access the resource (403)."""

    status = 403


class NotFoundError(HTTPError):
    """The translated pathname does not exist on disk (404)."""

    status = 404


class RequestTooLargeError(HTTPError):
    """The request header exceeded the configured maximum size (413)."""

    status = 413


class NotImplementedError_(HTTPError):
    """The request used a method the server does not implement (501).

    The trailing underscore avoids shadowing Python's builtin
    :class:`NotImplementedError`, which has entirely different semantics.
    """

    status = 501


class VersionNotSupportedError(HTTPError):
    """The request used an HTTP version other than 0.9, 1.0 or 1.1 (505)."""

    status = 505

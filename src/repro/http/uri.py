"""URI normalization and pathname translation.

Pathname translation is the "Find file" step in the paper's Figure 1: the
requested URL (e.g. ``/~bob/``) is mapped to an actual file on disk (e.g.
``/home/users/bob/public_html/index.html``).  In Flash this step is expensive
enough to warrant both a dedicated cache (Section 5.2) and helper processes
(the translation may require directory lookups that touch the disk), so the
functional translation logic lives here where both the cache and the helpers
can share it.
"""

from __future__ import annotations

import os
import posixpath
from urllib.parse import unquote

from repro.http.errors import BadRequestError, ForbiddenError, NotFoundError

#: File served when a request names a directory, mirroring the paper's
#: ``/~bob`` -> ``.../public_html/index.html`` example.
INDEX_FILE = "index.html"


def split_query(uri: str) -> tuple[str, str]:
    """Split ``uri`` into (path, query-string).

    >>> split_query("/cgi-bin/search?q=flash")
    ('/cgi-bin/search', 'q=flash')
    >>> split_query("/index.html")
    ('/index.html', '')
    """
    if "?" in uri:
        path, query = uri.split("?", 1)
        return path, query
    return uri, ""


def normalize_uri(uri: str) -> str:
    """Decode and canonicalize the path component of a request URI.

    Percent-escapes are decoded, repeated slashes collapsed and ``.``/``..``
    segments resolved.  A request whose normalized form escapes the document
    root (i.e. still begins with ``..``) raises :class:`ForbiddenError`; this
    is the standard defence against ``GET /../../etc/passwd``.

    >>> normalize_uri("/a/b/../c//d.html")
    '/a/c/d.html'
    >>> normalize_uri("/%7Ebob/")
    '/~bob/'
    """
    if not uri.startswith("/"):
        raise BadRequestError(f"request URI must be absolute path: {uri!r}")
    decoded = unquote(uri)
    if "\x00" in decoded:
        raise BadRequestError("NUL byte in request URI")
    # Reject any path that would climb above the document root at any point.
    # posixpath.normpath silently clamps "/../x" to "/x", which would turn a
    # traversal attempt into a legitimate-looking path, so the depth check
    # must happen on the raw segments.
    depth = 0
    for segment in decoded.split("/"):
        if segment == "..":
            depth -= 1
        elif segment not in ("", "."):
            depth += 1
        if depth < 0:
            raise ForbiddenError("request URI escapes document root")
    had_trailing_slash = decoded.endswith("/")
    normalized = posixpath.normpath(decoded)
    if had_trailing_slash and not normalized.endswith("/"):
        normalized += "/"
    return normalized


def translate_path(
    uri: str,
    document_root: str,
    *,
    index_file: str = INDEX_FILE,
    user_dirs: dict[str, str] | None = None,
) -> str:
    """Translate a normalized request URI into an absolute filesystem path.

    This performs the potentially blocking "Find file" step: the returned
    path is checked for existence and readability, directory requests are
    resolved to their index file, and home-directory URIs (``/~user/...``)
    are mapped through ``user_dirs`` exactly as the paper's
    ``/~bob`` -> ``/home/users/bob/public_html/index.html`` example.

    Parameters
    ----------
    uri:
        The request path (no query string), already normalized by
        :func:`normalize_uri`.
    document_root:
        Directory that anchors ordinary requests.
    index_file:
        File appended when the URI names a directory.
    user_dirs:
        Optional mapping from user name to that user's ``public_html``
        directory, used for ``/~user`` URIs.

    Raises
    ------
    NotFoundError
        If the translated path does not exist.
    ForbiddenError
        If the path exists but is not a readable regular file, or the URI
        attempts to escape the document root.
    """
    path = normalize_uri(uri)
    if user_dirs and path.startswith("/~"):
        rest = path[2:]
        user, _, tail = rest.partition("/")
        base = user_dirs.get(user)
        if base is None:
            raise NotFoundError(f"no such user directory: ~{user}")
        candidate = os.path.join(base, tail.lstrip("/"))
    else:
        candidate = os.path.join(document_root, path.lstrip("/"))

    candidate = os.path.normpath(candidate)
    root = os.path.normpath(document_root)
    if user_dirs is None and not (candidate == root or candidate.startswith(root + os.sep)):
        raise ForbiddenError("translated path escapes document root")

    if os.path.isdir(candidate):
        candidate = os.path.join(candidate, index_file)

    if not os.path.exists(candidate):
        raise NotFoundError(f"file not found: {uri}")
    if not os.path.isfile(candidate):
        raise ForbiddenError(f"not a regular file: {uri}")
    if not os.access(candidate, os.R_OK):
        raise ForbiddenError(f"permission denied: {uri}")
    return candidate

"""Version of the Flash reproduction package."""

__version__ = "1.0.0"

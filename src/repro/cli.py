"""Command-line interface for the Flash reproduction.

Three subcommands cover the library's main uses:

``serve``
    Run one of the real servers (AMPED/SPED/MP/MT) on a document root::

        python -m repro serve --root ./www --architecture amped --port 8080

``loadgen``
    Drive any HTTP server with the paper's event-driven client::

        python -m repro loadgen --host 127.0.0.1 --port 8080 --path /index.html \
            --clients 32 --duration 5

``experiment``
    Regenerate one of the paper's figures as a text table (optionally a
    ``BENCH_<fig>.json`` payload)::

        python -m repro experiment fig9
        python -m repro experiment fig11 --quick --json results/

``validate-bench``
    Check ``BENCH_*.json`` payloads against the result schema (the check
    CI runs on every archived benchmark artifact)::

        python -m repro validate-bench benchmarks/results/BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.client.coordinator import LoadCoordinator
from repro.client.loadgen import LoadGenerator
from repro.core.backends import available_backends
from repro.core.config import ServerConfig
from repro.servers import ARCHITECTURES, create_server


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the Flash web server (USENIX ATC 1999).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser("serve", help="run one of the real servers")
    serve.add_argument("--root", required=True, help="document root to serve")
    serve.add_argument(
        "--architecture",
        default="amped",
        choices=sorted(ARCHITECTURES),
        help="server architecture (default: amped, i.e. Flash)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--helpers", type=int, default=4, help="AMPED helper count")
    serve.add_argument("--workers", type=int, default=32, help="MP/MT worker count")
    serve.add_argument(
        "--no-caches", action="store_true", help="disable all application-level caches"
    )
    serve.add_argument(
        "--io-backend",
        default="auto",
        choices=("auto",) + available_backends(),
        help="event-notification mechanism for the SPED/AMPED event loop "
        "(default: auto = best available on this platform)",
    )
    serve.add_argument(
        "--no-zero-copy",
        action="store_true",
        help="disable the sendfile zero-copy send path (use buffered writes)",
    )
    serve.add_argument(
        "--no-warming",
        action="store_true",
        help="disable sendfile-aware warming of cold fd-backed responses "
        "(posix_fadvise WILLNEED + helper read-touch)",
    )
    serve.add_argument(
        "--no-cork",
        action="store_true",
        help="disable TCP_CORK batching of pipelined keep-alive responses",
    )
    serve.add_argument(
        "--no-hot-cache",
        action="store_true",
        help="disable the unified hot-response cache (single-lookup fast "
        "path for repeated static GETs)",
    )
    serve.add_argument(
        "--no-fast-parse",
        action="store_true",
        help="always run the full request parser, even for plain GETs",
    )
    serve.add_argument(
        "--header-timeout", type=float, default=15.0, metavar="SECONDS",
        help="absolute budget for a complete request head; expiry answers "
        "408 and closes (0 disables; default 15)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="keep-alive idle budget between requests (0 disables; "
        "default 30)",
    )
    serve.add_argument(
        "--write-stall-timeout", type=float, default=30.0, metavar="SECONDS",
        help="maximum time with no response byte accepted by the peer "
        "before the connection is reaped (0 disables; default 30)",
    )
    serve.add_argument(
        "--cache-max-age", type=int, default=0, metavar="SECONDS",
        help="emit Cache-Control: max-age=N (and Expires) on static "
        "200/206 responses (0 omits the headers; default 0)",
    )
    serve.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run N supervised server processes sharing the port via "
        "SO_REUSEPORT; dead shards are restarted with exponential "
        "backoff, and SIGTERM drains the whole fleet (default 1: a "
        "single unsupervised server)",
    )
    serve.add_argument(
        "--max-connections", type=int, default=0, metavar="N",
        help="admission control: above N concurrently open connections, "
        "new arrivals are answered 503 with Retry-After and closed "
        "(0 disables; default 0)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="graceful-shutdown budget: on SIGTERM/SIGINT the server "
        "stops accepting and waits this long for in-flight responses "
        "before force-closing stragglers (default 5)",
    )
    serve.add_argument(
        "--retry-after", type=int, default=1, metavar="SECONDS",
        help="Retry-After value advertised on 503 shed responses "
        "(default 1)",
    )
    serve.add_argument(
        "--sse-path", default="/sse", metavar="PATH",
        help="request path of the built-in Server-Sent Events endpoint "
        "(empty string disables it; default /sse)",
    )
    serve.add_argument(
        "--sse-heartbeat", type=float, default=0.0, metavar="SECONDS",
        help="publish a heartbeat tick event to every SSE subscriber at "
        "this interval (0 disables; default 0)",
    )
    serve.add_argument(
        "--sse-queue-limit", type=int, default=64, metavar="N",
        help="bounded per-subscriber SSE event queue depth (default 64)",
    )
    serve.add_argument(
        "--sse-policy", default="drop", choices=("drop", "disconnect"),
        help="what a full subscriber queue does with the next event: "
        "drop the oldest queued event, or disconnect the slow "
        "subscriber after its backlog flushes (default drop)",
    )
    serve.add_argument(
        "--cgi-stream-depth", type=int, default=8, metavar="N",
        help="bounded chunk queue between a streaming CGI producer and "
        "the connection; a stalled client fills it and blocks the "
        "producer (default 8)",
    )

    loadgen = subparsers.add_parser("loadgen", help="drive a server with simulated clients")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--path", action="append", default=None,
                         help="request path (repeatable; default /)")
    loadgen.add_argument("--clients", type=int, default=16)
    loadgen.add_argument("--duration", type=float, default=5.0)
    loadgen.add_argument("--no-keep-alive", action="store_true")
    loadgen.add_argument("--think-time", type=float, default=0.0,
                         help="per-client pause between requests (emulates WAN clients)")
    loadgen.add_argument("--range-fraction", type=float, default=0.0,
                         help="fraction of requests issued as single-range GETs "
                         "(deterministically interleaved; 0 disables)")
    loadgen.add_argument("--range-bytes", default="0-1023",
                         help="byte range the ranged requests ask for "
                         "(Range: bytes=<spec>; default 0-1023)")
    loadgen.add_argument("--conditional-fraction", type=float, default=0.0,
                         help="fraction of requests issued as If-None-Match "
                         "revalidations replaying captured ETags "
                         "(deterministically interleaved; 0 disables)")
    loadgen.add_argument("--slow-writers", type=int, default=0,
                         help="misbehaving clients dribbling an incomplete "
                         "request head (slowloris), attached alongside the "
                         "real clients")
    loadgen.add_argument("--slow-readers", type=int, default=0,
                         help="misbehaving clients that request a response "
                         "and then drain it at the dribble rate, stalling "
                         "the server's send")
    loadgen.add_argument("--sse-clients", type=int, default=0, metavar="N",
                         dest="sse_clients",
                         help="mostly-idle Server-Sent Events subscribers "
                         "attached alongside the real clients; each "
                         "subscribes once, validates the chunked event "
                         "framing, and reports events received")
    loadgen.add_argument("--sse-path", default="/sse", metavar="PATH",
                         help="endpoint the SSE subscribers request "
                         "(default /sse)")
    loadgen.add_argument("--chunked-fraction", type=float, default=0.0,
                         help="fraction of requests issued against the "
                         "streaming endpoint and completed by parsing "
                         "Transfer-Encoding: chunked framing "
                         "(deterministically interleaved; 0 disables)")
    loadgen.add_argument("--chunked-path", default="/cgi-bin/stream",
                         metavar="PATH",
                         help="path the chunked-mix requests hit "
                         "(default /cgi-bin/stream)")
    loadgen.add_argument("--connection-flood", type=int, default=0,
                         metavar="N", dest="connection_flood",
                         help="connection-flood clients that open and hold "
                         "connections without sending, driving the server "
                         "into its admission limit (each refloods one "
                         "dribble interval after being shed)")
    loadgen.add_argument("--retry-backoff", type=float, default=0.05,
                         metavar="SECONDS",
                         help="closed-loop pause before a well-behaved "
                         "client retries a request the server shed with "
                         "503 (default 0.05)")
    loadgen.add_argument("--retry-resets", action="store_true",
                         dest="retry_resets",
                         help="chaos mode: retry (instead of failing) a "
                         "closed-loop request whose connection was reset "
                         "mid-exchange, e.g. because the serving shard "
                         "was killed")
    loadgen.add_argument("--dribble-bytes", type=int, default=1,
                         help="bytes a misbehaving client moves per dribble "
                         "(default 1)")
    loadgen.add_argument("--dribble-interval", type=float, default=0.5,
                         help="seconds between a misbehaving client's "
                         "dribbles (default 0.5)")
    loadgen.add_argument("--workers", type=int, default=1,
                         help="load-generator worker processes; above 1 the "
                         "run is coordinated across spawned processes and "
                         "the printed numbers are the exact merge "
                         "(default 1)")
    loadgen.add_argument("--pin-cpus", action="store_true",
                         help="pin each worker process to one allowed CPU "
                         "(best effort, Linux sched_setaffinity)")
    loadgen.add_argument("--arrival-rate", type=float, default=None,
                         metavar="REQ_PER_S",
                         help="open-loop mode: offer requests on a seeded "
                         "Poisson schedule at this total rate instead of "
                         "as fast as the server answers (closed loop)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="base seed for the open-loop schedule; worker "
                         "seeds derive from (seed, worker index) so one "
                         "seed reproduces the whole cluster (default 0)")
    loadgen.add_argument("--json", metavar="FILE", default=None,
                         help="also write the full machine-readable result "
                         "(merged + per-worker counters, latency summary) "
                         "as JSON ('-' for stdout)")

    experiment = subparsers.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument(
        "figure",
        choices=["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"],
        help="which figure to regenerate",
    )
    experiment.add_argument("--quick", action="store_true", help="coarser, faster settings")
    experiment.add_argument("--json", metavar="DIR", default=None,
                            help="also write the schema-valid BENCH_<fig>.json "
                            "payload into this directory")

    validate = subparsers.add_parser(
        "validate-bench",
        help="validate BENCH_*.json payloads against the result schema",
    )
    validate.add_argument("files", nargs="+", metavar="FILE",
                          help="BENCH json files to check")

    return parser


def _format_summary(stats) -> str:
    """The shutdown summary line for ``serve``.

    Split out of :func:`cmd_serve` so a unit test can pin the stats field
    names it reads — the timeout counters in particular must not drift
    from the names the servers increment.
    """
    return (
        f"served {stats.requests} requests "
        f"({stats.responses_ok} ok, {stats.responses_error} errors, "
        f"{stats.not_modified_responses} not-modified, "
        f"{stats.precondition_failed} precondition-failed, "
        f"{stats.range_responses} partial "
        f"({stats.range_multipart_responses} multipart), "
        f"{stats.range_unsatisfiable} range-unsatisfiable); "
        f"hot hits: {stats.hot_hits}, batched: {stats.hot_batched}; "
        f"timeouts: {stats.timeouts_header} header, "
        f"{stats.timeouts_idle} idle, "
        f"{stats.timeouts_write_stall} write-stall; "
        f"overload: {stats.connections_shed} shed (503), "
        f"{stats.fd_exhaustion_events} fd-exhaustion, "
        f"{stats.accept_pauses} accept-pauses, "
        f"{stats.drain_forced_closes} drain-force-closed; "
        f"streaming: {stats.streamed_responses} streamed "
        f"({stats.chunked_responses} chunked), "
        f"{stats.sse_connections} sse-subscribers, "
        f"{stats.backpressure_pauses} backpressure-pauses, "
        f"{stats.sse_dropped_events} sse-dropped"
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a real server (or a supervised shard fleet) in the foreground.

    Both stop paths — SIGTERM from a process manager and Ctrl-C at a
    terminal — trigger the same graceful drain: stop accepting, finish
    in-flight responses under ``--drain-timeout``, print the shutdown
    summary, exit 0.
    """
    import signal
    import threading
    import time

    config = ServerConfig(
        document_root=args.root,
        host=args.host,
        port=args.port,
        num_helpers=args.helpers,
        num_workers=args.workers,
        io_backend=args.io_backend,
        zero_copy=not args.no_zero_copy,
        helper_warming=not args.no_warming,
        cork_responses=not args.no_cork,
        hot_cache=not args.no_hot_cache,
        fast_parse=not args.no_fast_parse,
        header_timeout=args.header_timeout,
        idle_timeout=args.idle_timeout,
        write_stall_timeout=args.write_stall_timeout,
        cache_max_age=args.cache_max_age,
        max_connections=args.max_connections,
        drain_timeout=args.drain_timeout,
        retry_after=args.retry_after,
        sse_path=args.sse_path or None,
        sse_heartbeat=args.sse_heartbeat,
        sse_queue_limit=args.sse_queue_limit,
        sse_policy=args.sse_policy,
        cgi_stream_depth=args.cgi_stream_depth,
    )
    if args.no_caches:
        config = config.without_caches()

    def _install_drain_handlers(handler):
        # signal.signal returns the handler it replaced; keep it so the
        # caller's handlers survive an in-process cmd_serve (tests embed
        # the CLI — a leaked handler would swallow later SIGTERMs).
        saved = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                saved.append((sig, signal.signal(sig, handler)))
            except ValueError:  # pragma: no cover - not on the main thread
                pass
        return saved

    def _restore_drain_handlers(saved):
        for sig, previous in saved:
            try:
                signal.signal(sig, previous)
            except (ValueError, TypeError):  # pragma: no cover
                pass

    if args.shards > 1:
        # Imported lazily: the single-server path must not require
        # SO_REUSEPORT support.
        from repro.core.supervisor import ShardSupervisor

        supervisor = ShardSupervisor(
            config, architecture=args.architecture, shards=args.shards
        )
        # Handlers go in before the banner: a SIGTERM racing the startup
        # message must drain, not kill.  run_forever re-installs the same
        # behaviour on the main thread.
        saved = _install_drain_handlers(lambda *_: supervisor.request_drain())
        host, port = supervisor.address
        print(
            f"{args.architecture} fleet: {args.shards} shards sharing "
            f"http://{host}:{port}/ via SO_REUSEPORT, serving "
            f"{config.document_root}"
        )
        print("press Ctrl-C (or send SIGTERM) to drain and stop")
        try:
            code = supervisor.run_forever(install_signals=True)
        except KeyboardInterrupt:
            # A second Ctrl-C during the drain lands here: stop hard.
            supervisor.stop()
            code = 0
        finally:
            _restore_drain_handlers(saved)
        print(
            f"\nfleet stopped: {supervisor.shard_deaths} shard deaths, "
            f"{supervisor.restarts} restarts"
        )
        print(_format_summary(supervisor.stats))
        return code

    server = create_server(args.architecture, config)
    drain_started = threading.Event()

    def _trigger_drain(_signum=None, _frame=None) -> None:
        if drain_started.is_set():
            return
        drain_started.set()
        print(
            f"\ndraining: waiting up to {config.drain_timeout:.1f}s "
            "for in-flight responses"
        )
        server.request_drain()

    # Handlers go in before the banner: a SIGTERM racing the startup
    # message must drain, not kill.
    saved = _install_drain_handlers(_trigger_drain)
    server.start()
    host, port = server.address
    print(f"{args.architecture} server serving {config.document_root} on http://{host}:{port}/")
    if hasattr(server, "loop"):
        send_path = "zero-copy (sendfile)" if config.zero_copy else "buffered"
        warming = "on" if (config.zero_copy and config.helper_warming) else "off"
        cork = "on" if config.cork_responses else "off"
        hot = "on" if config.hot_cache else "off"
        fast = "on" if config.fast_parse else "off"
        print(
            f"io backend: {server.loop.backend_name}; send path: {send_path}; "
            f"fd warming: {warming}; cork batching: {cork}; "
            f"hot cache: {hot}; fast parse: {fast}"
        )
    print("press Ctrl-C (or send SIGTERM) to drain and stop")
    try:
        while not drain_started.is_set():
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - handler normally installed
        _trigger_drain()
    try:
        if hasattr(server, "drain"):
            server.drain()
    finally:
        _restore_drain_handlers(saved)
        server.stop()
        stats = getattr(server, "stats", None)
        if stats is not None:
            print(_format_summary(stats))
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Run the load generator (single- or multi-process) and print its summary."""
    paths = args.path or ["/"]
    if args.workers > 1:
        if args.think_time:
            print("--think-time is a single-process knob; drop it or use "
                  "--workers 1", file=sys.stderr)
            return 2
        coordinator = LoadCoordinator(
            (args.host, args.port),
            paths,
            workers=args.workers,
            num_clients=args.clients,
            duration=args.duration,
            keep_alive=not args.no_keep_alive,
            range_fraction=args.range_fraction,
            range_spec=args.range_bytes,
            conditional_fraction=args.conditional_fraction,
            slow_writers=args.slow_writers,
            slow_readers=args.slow_readers,
            flood_connections=args.connection_flood,
            sse_clients=args.sse_clients,
            sse_path=args.sse_path,
            chunked_fraction=args.chunked_fraction,
            chunked_path=args.chunked_path,
            retry_backoff=args.retry_backoff,
            retry_resets=args.retry_resets,
            dribble_bytes=args.dribble_bytes,
            dribble_interval=args.dribble_interval,
            arrival_rate=args.arrival_rate,
            seed=args.seed,
            pin_cpus=args.pin_cpus,
        )
        cluster = coordinator.run()
        result = cluster.merged
        payload = cluster.to_dict()
    else:
        generator = LoadGenerator(
            (args.host, args.port),
            paths,
            num_clients=args.clients,
            duration=args.duration,
            keep_alive=not args.no_keep_alive,
            think_time=args.think_time,
            range_fraction=args.range_fraction,
            range_spec=args.range_bytes,
            conditional_fraction=args.conditional_fraction,
            slow_writers=args.slow_writers,
            slow_readers=args.slow_readers,
            flood_connections=args.connection_flood,
            sse_clients=args.sse_clients,
            sse_path=args.sse_path,
            chunked_fraction=args.chunked_fraction,
            chunked_path=args.chunked_path,
            retry_backoff=args.retry_backoff,
            retry_resets=args.retry_resets,
            dribble_bytes=args.dribble_bytes,
            dribble_interval=args.dribble_interval,
            arrival_rate=args.arrival_rate,
            seed=args.seed,
        )
        result = generator.run()
        payload = result.to_dict()
    if args.workers > 1:
        print(f"workers:            {args.workers}"
              f"{' (pinned)' if args.pin_cpus else ''}")
    print(f"clients:            {args.clients * args.workers}")
    print(f"duration:           {result.elapsed:.2f} s")
    print(f"requests completed: {result.requests_completed}")
    print(f"connection rate:    {result.request_rate:,.1f} requests/s")
    print(f"output bandwidth:   {result.bandwidth_mbps:.2f} Mb/s")
    print(f"not modified:       {result.not_modified}")
    print(f"errors:             {result.errors}")
    summary = result.latency.summary_ms()
    if summary["count"]:
        print(f"latency p50/p90/p99/p999: {summary['p50_ms']:.2f}/"
              f"{summary['p90_ms']:.2f}/{summary['p99_ms']:.2f}/"
              f"{summary['p999_ms']:.2f} ms")
        print(f"latency mean/max:   {summary['mean_ms']:.2f}/"
              f"{summary['max_ms']:.2f} ms")
    if args.arrival_rate is not None:
        print(f"offered rate:       {args.arrival_rate:,.1f} requests/s "
              "(open loop)")
        print(f"dispatched:         {result.dispatched}")
        print(f"max lateness:       {result.lateness_max * 1e3:.2f} ms")
        print(f"max backlog:        {result.max_backlog}")
    if args.slow_writers or args.slow_readers:
        print(f"slow clients:       {args.slow_writers} writers, "
              f"{args.slow_readers} readers"
              f"{' per worker' if args.workers > 1 else ''}")
        print(f"reaped:             {result.reaped}")
        print(f"rejected with 408:  {result.rejected_408}")
    if args.connection_flood or result.rejected_503 or result.retries:
        if args.connection_flood:
            print(f"flood clients:      {args.connection_flood}"
                  f"{' per worker' if args.workers > 1 else ''}")
        print(f"rejected with 503:  {result.rejected_503}")
        print(f"retries:            {result.retries}")
    if args.retry_resets or result.connection_resets:
        print(f"connection resets:  {result.connection_resets}")
    if args.chunked_fraction:
        print(f"chunked responses:  {result.chunked_responses}")
    if args.sse_clients:
        print(f"sse subscribers:    {args.sse_clients}"
              f"{' per worker' if args.workers > 1 else ''}")
        print(f"sse events:         {result.sse_events}")
    if args.json:
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
    return 0 if result.errors == 0 else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    """Regenerate one figure and print its table."""
    # Imported lazily: the experiment drivers pull in the simulation layer,
    # which the serve/loadgen paths do not need.
    from repro.experiments import (
        DatasetSweepExperiment,
        OptimizationBreakdownExperiment,
        SingleFileExperiment,
        TraceReplayExperiment,
        WANClientsExperiment,
    )

    duration = 1.0 if args.quick else 2.5
    trace_duration = 2.0 if args.quick else 4.0
    factories = {
        "fig6": lambda: (SingleFileExperiment("solaris", duration=duration, warmup=0.4), "bandwidth_mbps"),
        "fig7": lambda: (SingleFileExperiment("freebsd", duration=duration, warmup=0.4), "bandwidth_mbps"),
        "fig8": lambda: (TraceReplayExperiment("solaris", duration=trace_duration, warmup=1.0), "bandwidth_mbps"),
        "fig9": lambda: (DatasetSweepExperiment("freebsd", duration=trace_duration, warmup=1.0), "bandwidth_mbps"),
        "fig10": lambda: (DatasetSweepExperiment("solaris", duration=trace_duration, warmup=1.0), "bandwidth_mbps"),
        "fig11": lambda: (OptimizationBreakdownExperiment("freebsd", duration=duration, warmup=0.4), "request_rate"),
        "fig12": lambda: (WANClientsExperiment("solaris", duration=trace_duration, warmup=1.0), "bandwidth_mbps"),
    }
    experiment, metric = factories[args.figure]()
    result = experiment.run()
    print(result.to_table(metric=metric))
    if args.json:
        path = result.write_json(args.json)
        print(f"wrote {path}")
    return 0


def cmd_validate_bench(args: argparse.Namespace) -> int:
    """Validate BENCH json files against the result schema."""
    from repro.experiments.results import validate_bench_payload

    failures = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            validate_bench_payload(payload)
        except (OSError, ValueError) as exc:
            # json.JSONDecodeError is a ValueError, so malformed JSON and
            # schema violations report uniformly.
            print(f"{path}: FAIL: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"{path}: ok ({len(payload['rows'])} rows, "
              f"schema v{payload['schema_version']})")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "experiment": cmd_experiment,
        "validate-bench": cmd_validate_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

"""Memory-residency testing (paper Section 5.7).

Flash uses the ``mincore()`` system call to determine whether mapped file
pages are memory resident before sending them; if they are not, the request
is handed to a read helper so the main process never blocks on a page fault.
Section 5.7 also sketches two fallbacks for systems without ``mincore``:
``mlock``-based cache control, and a feedback-based clock heuristic that
*predicts* which cached pages are resident using page-fault counters.

This module provides three interchangeable testers:

* :class:`MincoreResidencyTester` — the real thing, using ``mincore`` via
  ``mmap.madvise``-era interfaces where available and falling back to an
  optimistic answer elsewhere (documented below).
* :class:`ClockResidencyPredictor` — the feedback heuristic: a clock over
  recently touched chunks sized by an estimate of available file-cache
  memory, adapted with fault feedback.
* :class:`SimulatedResidencyOracle` — used by tests and by the simulation
  layer, where residency is defined by the simulated OS buffer cache.

Every tester also answers the *fd-backed* residency query
(``file_resident``) used by the zero-copy send path: a ``sendfile``
response never maps the file, so there is no :class:`MappedChunk` to hand
to ``is_resident``.  ``MincoreResidencyTester`` probes by building a
*transient* private mapping of the descriptor — ``mmap`` itself faults no
pages in, so ``mincore`` over the fresh mapping reports the true buffer
cache state — and unmapping it immediately.  Where that is impossible it
returns ``None`` ("cannot tell"), and the caller falls back to the clock
predictor, which tracks fd-backed files with the same synthetic chunk keys
the mapped path uses.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import mmap
from typing import Optional, Protocol, TYPE_CHECKING

from repro.cache.lru import LRUList

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cache.mapped_file import MappedChunk


#: Chunk granularity the clock predictor uses to track fd-backed files; it
#: matches the mapped-file cache's default chunk size so a file served via
#: both routes is accounted once, not twice.
FD_TRACKING_CHUNK = 64 * 1024


class ResidencyTester(Protocol):
    """Interface shared by every residency tester."""

    def is_resident(self, chunk: "MappedChunk") -> bool:
        """Return True when all of ``chunk``'s pages are memory resident."""
        ...

    def file_resident(
        self, fd: int, length: int, path: str = "", offset: int = 0
    ) -> Optional[bool]:
        """Residency of an fd-backed (non-mmapped) byte range.

        ``(offset, length)`` is the window the caller intends to transmit
        (a Range response probes only its own window).  Returns True/False
        when the tester can answer, or ``None`` when it cannot (the caller
        should then consult the clock predictor).
        """
        ...


def _load_libc_mincore():
    """Locate the C library's ``mincore`` symbol, or None when unavailable."""
    try:
        libc_name = ctypes.util.find_library("c")
        if not libc_name:
            return None
        libc = ctypes.CDLL(libc_name, use_errno=True)
        return getattr(libc, "mincore", None)
    except OSError:  # pragma: no cover - depends on platform
        return None


_LIBC_MINCORE = _load_libc_mincore()
_PAGE_SIZE = mmap.PAGESIZE


def _mincore_over_buffer(data, length: int) -> Optional[bool]:
    """Run ``mincore`` over ``length`` bytes of a writable buffer.

    Returns True when every page is resident, False when any is missing,
    and ``None`` when the system call cannot be reached (no libc symbol, a
    read-only buffer that ctypes cannot address, or a failing call).
    """
    if _LIBC_MINCORE is None or length <= 0:
        return None
    pages = (length + _PAGE_SIZE - 1) // _PAGE_SIZE
    vec = (ctypes.c_ubyte * pages)()
    try:
        address = ctypes.addressof(ctypes.c_char.from_buffer(data))
    except (TypeError, ValueError):
        return None
    result = _LIBC_MINCORE(ctypes.c_void_p(address), ctypes.c_size_t(length), vec)
    if result != 0:
        return None
    return all(byte & 1 for byte in vec)


class MincoreResidencyTester:
    """Tests page residency with the real ``mincore(2)`` system call.

    On platforms where ``mincore`` cannot be reached through ``ctypes`` the
    tester degrades to reporting every chunk resident, which corresponds to
    running Flash in its SPED-like fast path; the paper notes the same
    graceful degradation for operating systems lacking the call.  The
    ``optimistic_fallback`` flag can be set to False to instead report
    non-resident, forcing helper usage.
    """

    def __init__(self, optimistic_fallback: bool = True):
        self.optimistic_fallback = optimistic_fallback
        self.calls = 0
        self.fallback_answers = 0

    @property
    def available(self) -> bool:
        """Whether the real system call is reachable on this platform."""
        return _LIBC_MINCORE is not None

    def is_resident(self, chunk: "MappedChunk") -> bool:
        self.calls += 1
        data = chunk.data
        if not isinstance(data, mmap.mmap) or chunk.length == 0:
            return True
        verdict = _mincore_over_buffer(data, chunk.length)
        if verdict is None:
            # No reachable mincore, or a read-only mapping ctypes cannot
            # address: degrade to the configured optimistic/pessimistic
            # answer, as on platforms without the system call.
            self.fallback_answers += 1
            return self.optimistic_fallback
        return verdict

    def file_resident(
        self, fd: int, length: int, path: str = "", offset: int = 0
    ) -> Optional[bool]:
        """Probe residency of an fd-backed window via a transient mapping.

        Creating the mapping faults no pages in (``ACCESS_COPY`` only
        reserves address space), so ``mincore`` over it reflects the OS
        buffer cache state of the file itself; the mapping is dropped
        before returning.  The mapping starts at ``offset`` rounded down
        to the allocation granularity (``mmap`` requires it), so a range
        probe inspects only its own window plus at most one page of
        lead-in.  Returns ``None`` when the probe is impossible (no
        ``mincore``, unmappable descriptor, empty range) so the caller can
        fall back to the clock predictor.
        """
        self.calls += 1
        if length <= 0:
            return True
        if _LIBC_MINCORE is None or fd < 0:
            # No reachable mincore — or a negative descriptor, which mmap
            # would silently turn into an *anonymous* mapping (probing
            # freshly allocated memory, not the file's cache state).
            self.fallback_answers += 1
            return None
        aligned = offset - (offset % mmap.ALLOCATIONGRANULARITY)
        span = length + (offset - aligned)
        try:
            # ACCESS_COPY (private, copy-on-write) for the same reason the
            # mapped-file cache uses it: Python treats the mapping as
            # writable, which lets ctypes take its address for mincore.
            probe = mmap.mmap(fd, span, access=mmap.ACCESS_COPY, offset=aligned)
        except (OSError, ValueError, OverflowError):
            self.fallback_answers += 1
            return None
        try:
            verdict = _mincore_over_buffer(probe, span)
        finally:
            probe.close()
        if verdict is None:
            self.fallback_answers += 1
        return verdict


class ClockResidencyPredictor:
    """Feedback-based clock heuristic from Section 5.7.

    For operating systems with neither ``mincore`` nor ``mlock``, Flash can
    run the clock algorithm itself to *predict* which cached file pages are
    memory resident, adapting the amount of memory it assumes is available to
    the file cache using feedback from page-fault counters.

    The predictor tracks recently used chunks in an LRU list bounded by an
    estimate of the file-cache size.  Chunks inside the estimated resident
    set are predicted resident.  Feedback arrives through
    :meth:`record_fault` (a predicted-resident page actually faulted: shrink
    the estimate) and :meth:`record_idle_capacity` (disk stayed idle: grow
    the estimate), mirroring the continuous-feedback loop the paper sketches.
    """

    def __init__(
        self,
        estimated_cache_bytes: int = 64 * 1024 * 1024,
        min_cache_bytes: int = 1024 * 1024,
        max_cache_bytes: int = 1024 * 1024 * 1024,
        shrink_factor: float = 0.9,
        grow_factor: float = 1.05,
        fd_chunk_bytes: int = FD_TRACKING_CHUNK,
    ):
        if estimated_cache_bytes <= 0:
            raise ValueError("estimated_cache_bytes must be positive")
        if fd_chunk_bytes <= 0:
            raise ValueError("fd_chunk_bytes must be positive")
        #: Granularity at which fd-backed files are tracked.  Must match
        #: the mapped-file cache's chunk size so a file served via both
        #: routes shares one set of clock entries (the default matches
        #: the mapped cache's default chunk size).
        self.fd_chunk_bytes = fd_chunk_bytes
        self.estimated_cache_bytes = float(estimated_cache_bytes)
        self.min_cache_bytes = float(min_cache_bytes)
        self.max_cache_bytes = float(max_cache_bytes)
        self.shrink_factor = shrink_factor
        self.grow_factor = grow_factor
        self._recent: LRUList[tuple] = LRUList()
        self._sizes: dict[tuple, int] = {}
        self._tracked_bytes = 0
        self.faults = 0
        self.predictions = 0

    def is_resident(self, chunk: "MappedChunk") -> bool:
        self.predictions += 1
        key = (chunk.key.path, chunk.key.index)
        resident = key in self._recent
        self._touch(key, chunk.length)
        return resident

    def file_resident(
        self, fd: int, length: int, path: str = "", offset: int = 0
    ) -> Optional[bool]:
        """Predict residency for an fd-backed window from the clock state.

        The file is tracked at the same chunk granularity as the mapped
        path (synthetic ``(path, index)`` keys over :attr:`fd_chunk_bytes`
        — configure it to the mapped cache's chunk size), so a file
        alternating between mapped and ``sendfile`` service is one set of
        clock entries, not two.  Only the chunks the ``(offset, length)``
        window intersects are consulted and touched — a Range response
        neither depends on nor keeps alive the rest of the file.  The
        descriptor is unused — the heuristic never inspects real pages;
        ``path`` is the identity.  Always answers (never ``None``): this
        predictor *is* the fallback of last resort.
        """
        self.predictions += 1
        if length <= 0:
            return True
        granularity = self.fd_chunk_bytes
        end = offset + length
        first = offset // granularity
        last = (end - 1) // granularity
        resident = True
        for index in range(first, last + 1):
            key = (path, index)
            if key not in self._recent:
                resident = False
            chunk_length = min(granularity, end - index * granularity)
            self._touch(key, chunk_length)
        return resident

    def record_fault(self, chunk: "MappedChunk") -> None:
        """Report that a predicted-resident chunk actually caused disk I/O."""
        self.faults += 1
        self.estimated_cache_bytes = max(
            self.min_cache_bytes, self.estimated_cache_bytes * self.shrink_factor
        )
        self._trim()

    def record_idle_capacity(self) -> None:
        """Report that the disk was idle; the cache estimate can grow."""
        self.estimated_cache_bytes = min(
            self.max_cache_bytes, self.estimated_cache_bytes * self.grow_factor
        )

    def _touch(self, key: tuple, length: int) -> None:
        if key not in self._recent:
            self._sizes[key] = length
            self._tracked_bytes += length
        self._recent.touch(key)
        self._trim()

    def _trim(self) -> None:
        while self._tracked_bytes > self.estimated_cache_bytes and len(self._recent):
            victim = self._recent.pop_coldest()
            self._tracked_bytes -= self._sizes.pop(victim, 0)


class SimulatedResidencyOracle:
    """Residency tester driven by an explicit set of resident files.

    Tests and the simulation layer use this to script exactly which content
    is "in memory": a chunk is resident iff its path is in
    :attr:`resident_paths` (or everything, when ``default_resident`` is set).
    """

    def __init__(self, resident_paths: Optional[set] = None, default_resident: bool = False):
        self.resident_paths = set(resident_paths or ())
        self.default_resident = default_resident
        self.queries = 0

    def is_resident(self, chunk: "MappedChunk") -> bool:
        self.queries += 1
        if chunk.key.path in self.resident_paths:
            return True
        return self.default_resident

    def file_resident(
        self, fd: int, length: int, path: str = "", offset: int = 0
    ) -> Optional[bool]:
        """Scripted answer for fd-backed queries: same rule as chunks."""
        self.queries += 1
        if path in self.resident_paths:
            return True
        return self.default_resident

    def mark_resident(self, path: str) -> None:
        """Record that ``path`` is now cached in (simulated) memory."""
        self.resident_paths.add(path)

    def mark_evicted(self, path: str) -> None:
        """Record that ``path`` left the (simulated) memory cache."""
        self.resident_paths.discard(path)

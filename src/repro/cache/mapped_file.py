"""Mapped-file chunk cache (paper Section 5.4).

Flash retains a cache of memory-mapped files to reduce the number of
map/unmap operations needed for request processing.  The cache operates on
*chunks* of files: small files occupy one chunk each while large files are
split into multiple chunks.  Inactive chunks are kept on an LRU free list
and unmapped lazily when too much data has been mapped; LRU approximates the
clock page-replacement algorithm used by the kernel, with the goal of
keeping mapped only what is likely to be resident in memory.  All mapped
pages are tested for memory residency (``mincore``) before use.

This module implements exactly that structure with real ``mmap`` objects.
Chunks are reference counted: a chunk being transmitted on a connection is
*active* (pinned, never unmapped); when its reference count drops to zero it
moves to the LRU free list and becomes an eviction candidate.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.lru import LRUList
from repro.cache.residency import MincoreResidencyTester, ResidencyTester

#: Chunk size used to split large files.  The paper does not give the exact
#: figure; 64 KB keeps per-chunk bookkeeping small while letting the largest
#: files in the evaluation (a few hundred KB) span a handful of chunks.
DEFAULT_CHUNK_SIZE = 64 * 1024

#: Default total bytes of mapped data, matching the paper's evaluation
#: configuration ("a memory mapped file cache with a 32 MB limit").
DEFAULT_MAX_MAPPED_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class ChunkKey:
    """Identity of one mapped chunk: the file plus the chunk index."""

    path: str
    index: int


@dataclass
class MappedChunk:
    """One mapped region of a file.

    Attributes
    ----------
    key:
        The file path and chunk index this mapping covers.
    offset:
        Byte offset of the chunk within the file.
    length:
        Number of bytes mapped (the final chunk of a file may be short).
    data:
        The ``mmap`` object (or ``bytes`` for empty files, which cannot be
        mapped on all platforms).
    refcount:
        Number of in-flight responses currently transmitting from this chunk.
    """

    key: ChunkKey
    offset: int
    length: int
    data: "mmap.mmap | bytes"
    refcount: int = 0
    _closed: bool = field(default=False, repr=False)

    def view(self) -> memoryview:
        """A zero-copy view of the mapped bytes."""
        return memoryview(self.data)[: self.length]

    def close(self) -> None:
        """Unmap the chunk.  Idempotent.

        If a memoryview exported from the mapping is still alive the unmap is
        deferred: the mapping stays open (and ``closed`` stays False) until
        the view holder releases it and ``close`` is called again — closing
        underneath an in-flight response would be a use-after-unmap.
        """
        if self._closed:
            return
        if isinstance(self.data, mmap.mmap):
            try:
                self.data.close()
            except BufferError:
                return
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once the underlying mapping has been released."""
        return self._closed


@dataclass
class CachedFD:
    """One cached open file descriptor handed to in-flight responses.

    The descriptor is owned by :class:`FileDescriptorCache`; holders pin it
    by acquisition refcount and must release it when the response finishes.
    ``orphaned`` marks descriptors whose cache entry was invalidated while
    still pinned: they are closed on final release instead of being reused.
    """

    path: str
    fd: int
    refcount: int = 0
    orphaned: bool = field(default=False, repr=False)
    closed: bool = field(default=False, repr=False)
    #: Whether a readahead hint (``posix_fadvise WILLNEED``) has already
    #: been issued for this descriptor — lets hot-path callers advise once
    #: per descriptor lifetime instead of paying a syscall per request.
    advised: bool = field(default=False, repr=False)
    #: Monotonic deadline until which a *resident* residency-probe verdict
    #: for this descriptor may be reused without re-probing (see
    #: ``ContentStore.fd_resident``); 0 means never probed resident.
    resident_probe_expiry: float = field(default=0.0, repr=False)
    #: Byte interval ``[start, end)`` the cached verdict actually covers.
    #: Probes are window-scoped (Range responses probe only their own
    #: window), so a reused verdict must cover the new window — a warm
    #: 1 KB head must not vouch for a cold 2 GB file.
    resident_probe_start: int = field(default=0, repr=False)
    resident_probe_end: int = field(default=0, repr=False)


class FileDescriptorCache:
    """Cache of open file descriptors for the zero-copy (sendfile) path.

    The paper's copy-avoidance argument extends naturally past ``mmap``:
    with ``sendfile`` the response body never enters user space, but a
    naive implementation pays an ``open``/``close`` pair per request.  This
    cache keeps descriptors of recently served files open — the
    filesystem-level analogue of the mapped-file cache — so a cache-hot
    request performs *no* name lookup, no open and no copy.

    Descriptors are reference counted exactly like mapped chunks: while a
    response is transmitting from a descriptor it cannot be closed; idle
    descriptors park on an LRU list bounded by ``max_entries``.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self._entries: dict[str, CachedFD] = {}
        self._free_list: LRUList[str] = LRUList()
        #: Optional hook called with the path whenever a cached descriptor
        #: is invalidated; the hot-response cache subscribes so its entries
        #: never outlive the descriptor they pinned.  (LRU eviction never
        #: touches pinned descriptors, so invalidation is the only way a
        #: subscribed holder can lose one.)
        self.on_invalidate: Optional[Callable[[str], None]] = None
        self.hits = 0
        self.misses = 0
        self.open_operations = 0
        self.close_operations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of acquisitions that reused an already open descriptor."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def acquire(self, path: str) -> CachedFD:
        """Pin and return an open descriptor for ``path``, opening if needed.

        Propagates ``OSError`` when the file cannot be opened; the caller
        is expected to fall back to the buffered path in that case.
        """
        entry = self._entries.get(path)
        if entry is not None:
            self.hits += 1
            if entry.refcount == 0:
                self._free_list.discard(path)
            entry.refcount += 1
            return entry
        self.misses += 1
        fd = os.open(path, os.O_RDONLY)
        self.open_operations += 1
        entry = CachedFD(path=path, fd=fd, refcount=1)
        self._entries[path] = entry
        self._evict_to_limit()
        return entry

    def release(self, entry: CachedFD) -> None:
        """Unpin ``entry``; idle descriptors stay cached on the LRU list."""
        if entry.refcount <= 0:
            raise ValueError(f"release of unpinned descriptor for {entry.path}")
        entry.refcount -= 1
        if entry.refcount > 0:
            return
        if entry.orphaned or self._entries.get(entry.path) is not entry:
            self._close(entry)
            return
        self._free_list.touch(entry.path)
        self._evict_to_limit()

    def invalidate(self, path: str) -> None:
        """Drop the cached descriptor for ``path``.

        A pinned descriptor is orphaned — removed from the cache but kept
        open for the in-flight response, which closes it on release.
        Subscribed holders (the hot-response cache) are notified so they
        release their pin; an orphan whose last pin drops is closed then.
        """
        entry = self._entries.pop(path, None)
        if entry is None:
            return
        self._free_list.discard(path)
        if entry.refcount == 0:
            self._close(entry)
        else:
            entry.orphaned = True
        if self.on_invalidate is not None:
            self.on_invalidate(path)

    def clear(self) -> None:
        """Invalidate every cached descriptor."""
        for path in list(self._entries):
            self.invalidate(path)

    def _close(self, entry: CachedFD) -> None:
        if entry.closed:
            return
        entry.closed = True
        try:
            os.close(entry.fd)
        except OSError:
            pass
        self.close_operations += 1

    def _evict_to_limit(self) -> None:
        while len(self._free_list) and len(self._entries) > self.max_entries:
            path = self._free_list.coldest()
            if path is None:
                break
            self._free_list.discard(path)
            entry = self._entries.get(path)
            if entry is None:
                continue
            if entry.refcount > 0:
                # Pinned descriptors must never be closed by eviction: a
                # sendfile transfer may be mid-flight on this fd (resuming
                # after a short write), and closing it would either break
                # the transfer with EBADF or — worse — silently redirect
                # it if the fd number is reused.  A pinned entry on the
                # free list means the LRU bookkeeping desynchronized;
                # dropping it from the list restores the invariant and the
                # descriptor is parked again on its final release.
                continue
            del self._entries[path]
            self._close(entry)


class MappedFileCache:
    """Reference-counted cache of memory-mapped file chunks with lazy unmap.

    Parameters
    ----------
    chunk_size:
        Size of each mapping chunk; files larger than this are split.
    max_mapped_bytes:
        Soft limit on the total bytes mapped by *inactive* chunks.  Active
        (pinned) chunks never count toward eviction decisions because they
        cannot be unmapped while a response is using them.
    residency_tester:
        The ``mincore`` substitute used to test whether a chunk's pages are
        resident before use (Section 5.7).  The default answers from the real
        ``mincore`` where available.
    """

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_mapped_bytes: int = DEFAULT_MAX_MAPPED_BYTES,
        residency_tester: Optional[ResidencyTester] = None,
    ):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if max_mapped_bytes < 0:
            raise ValueError("max_mapped_bytes must be non-negative")
        self.chunk_size = chunk_size
        self.max_mapped_bytes = max_mapped_bytes
        self.residency_tester = residency_tester or MincoreResidencyTester()
        #: Optional hook called with the path whenever chunks of a file are
        #: invalidated (see :attr:`FileDescriptorCache.on_invalidate`).
        self.on_invalidate: Optional[Callable[[str], None]] = None
        self._chunks: dict[ChunkKey, MappedChunk] = {}
        self._free_list: LRUList[ChunkKey] = LRUList()
        self._inactive_bytes = 0
        self.hits = 0
        self.misses = 0
        self.map_operations = 0
        self.unmap_operations = 0

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def mapped_bytes(self) -> int:
        """Total bytes currently mapped (active and inactive chunks)."""
        return sum(chunk.length for chunk in self._chunks.values())

    @property
    def inactive_bytes(self) -> int:
        """Bytes mapped by chunks on the LRU free list."""
        return self._inactive_bytes

    @property
    def hit_rate(self) -> float:
        """Fraction of chunk acquisitions that reused an existing mapping."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def chunk_count(self, size: int) -> int:
        """Number of chunks a file of ``size`` bytes occupies (at least 1)."""
        if size <= 0:
            return 1
        return (size + self.chunk_size - 1) // self.chunk_size

    def acquire(self, path: str, index: int = 0) -> MappedChunk:
        """Pin and return chunk ``index`` of ``path``, mapping it if needed.

        The caller must :meth:`release` the chunk when the response that uses
        it completes; until then the chunk is excluded from eviction.
        """
        key = ChunkKey(path=path, index=index)
        chunk = self._chunks.get(key)
        if chunk is not None:
            self.hits += 1
            if chunk.refcount == 0 and self._free_list.discard(key):
                self._inactive_bytes -= chunk.length
            chunk.refcount += 1
            return chunk

        self.misses += 1
        chunk = self._map_chunk(key)
        chunk.refcount = 1
        self._chunks[key] = chunk
        self._evict_to_limit()
        return chunk

    def acquire_file(self, path: str) -> list[MappedChunk]:
        """Pin and return every chunk of ``path`` in order."""
        size = os.path.getsize(path)
        return [self.acquire(path, index) for index in range(self.chunk_count(size))]

    def release(self, chunk: MappedChunk) -> None:
        """Unpin ``chunk``; when its refcount reaches zero it joins the LRU list."""
        if chunk.refcount <= 0:
            raise ValueError(f"release of unpinned chunk {chunk.key}")
        chunk.refcount -= 1
        if chunk.refcount == 0 and chunk.key in self._chunks:
            self._free_list.touch(chunk.key)
            self._inactive_bytes += chunk.length
            self._evict_to_limit()

    def is_resident(self, chunk: MappedChunk) -> bool:
        """Test whether the chunk's pages are memory resident (``mincore``)."""
        return self.residency_tester.is_resident(chunk)

    def invalidate(self, path: str) -> int:
        """Drop every *inactive* chunk of ``path``; return how many were unmapped.

        Active chunks are left alone (a response is still transmitting from
        them) but are forgotten by the cache so future requests re-map the
        changed file.
        """
        dropped = 0
        for key in [k for k in self._chunks if k.path == path]:
            chunk = self._chunks[key]
            if chunk.refcount == 0:
                self._unmap(key)
                dropped += 1
            else:
                # Orphan the active chunk: remove it from the index so a new
                # mapping is created next time, but leave the mmap alive for
                # the in-flight response, which will close it on release.
                del self._chunks[key]
        if self.on_invalidate is not None:
            self.on_invalidate(path)
        return dropped

    def clear(self) -> None:
        """Unmap every inactive chunk and forget active ones."""
        for key in list(self._chunks):
            chunk = self._chunks[key]
            if chunk.refcount == 0:
                self._unmap(key)
            else:
                del self._chunks[key]

    # -- internals ---------------------------------------------------------

    def _map_chunk(self, key: ChunkKey) -> MappedChunk:
        size = os.path.getsize(key.path)
        offset = key.index * self.chunk_size
        if key.index and offset >= size:
            raise ValueError(
                f"chunk index {key.index} out of range for {key.path} ({size} bytes)"
            )
        length = max(0, min(self.chunk_size, size - offset))
        self.map_operations += 1
        if length == 0:
            return MappedChunk(key=key, offset=offset, length=0, data=b"")
        # mmap offsets must be multiples of the allocation granularity; the
        # chunk size is a multiple of the page size so plain offsets work.
        # ACCESS_COPY (private, copy-on-write) rather than ACCESS_READ: the
        # mapping reads identical data but is considered writable by Python,
        # which lets the mincore residency tester obtain its address through
        # ctypes.  The server never writes through the mapping.
        with open(key.path, "rb") as handle:
            data = mmap.mmap(
                handle.fileno(), length, offset=offset, access=mmap.ACCESS_COPY
            )
        return MappedChunk(key=key, offset=offset, length=length, data=data)

    def _unmap(self, key: ChunkKey) -> None:
        chunk = self._chunks.pop(key)
        if self._free_list.discard(key):
            self._inactive_bytes -= chunk.length
        chunk.close()
        self.unmap_operations += 1

    def _evict_to_limit(self) -> None:
        while self._inactive_bytes > self.max_mapped_bytes and len(self._free_list):
            key = self._free_list.coldest()
            if key is None:
                break
            self._free_list.discard(key)
            chunk = self._chunks.pop(key, None)
            if chunk is None:
                continue
            self._inactive_bytes -= chunk.length
            chunk.close()
            self.unmap_operations += 1

"""Flash's application-level caches (paper Sections 5.2-5.4, 5.7).

Three caches are maintained by the Flash server:

* the **pathname translation cache** (:mod:`repro.cache.pathname`), mapping
  requested URLs to actual files on disk so the translation helpers are not
  needed for every request;
* the **response header cache** (:mod:`repro.cache.response_header`), storing
  pre-built HTTP response headers keyed by the underlying file, invalidated
  when the mapping cache notices the file changed;
* the **mapped file cache** (:mod:`repro.cache.mapped_file`), retaining
  memory-mapped chunks of files in an LRU free list so frequently requested
  content avoids repeated map/unmap system calls.

:mod:`repro.cache.hot_response` unifies all of the above behind one probe:
a **hot-response cache** keyed on the raw request-target bytes, whose
entries hold the validated translation, precomposed header variants and
pinned body resources — the single-lookup fast path for repeated static
GETs.

:mod:`repro.cache.residency` provides the memory-residency test (``mincore``)
and the feedback-based clock heuristic fallback described in Section 5.7.
:mod:`repro.cache.lru` provides the generic LRU machinery shared by all of
the above and by the simulator's OS buffer cache.
"""

from repro.cache.hot_response import HotEntry, HotResponseCache
from repro.cache.lru import LRUCache, LRUList
from repro.cache.mapped_file import ChunkKey, MappedFileCache, MappedChunk
from repro.cache.pathname import PathnameCache, PathnameEntry
from repro.cache.residency import (
    ClockResidencyPredictor,
    MincoreResidencyTester,
    ResidencyTester,
    SimulatedResidencyOracle,
)
from repro.cache.response_header import ResponseHeaderCache

__all__ = [
    "HotEntry",
    "HotResponseCache",
    "LRUCache",
    "LRUList",
    "PathnameCache",
    "PathnameEntry",
    "ResponseHeaderCache",
    "MappedFileCache",
    "MappedChunk",
    "ChunkKey",
    "ResidencyTester",
    "MincoreResidencyTester",
    "ClockResidencyPredictor",
    "SimulatedResidencyOracle",
]

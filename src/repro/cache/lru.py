"""Generic LRU machinery shared by Flash's caches and the simulator.

The paper uses LRU in two places with slightly different shapes:

* an *LRU cache* with a hard entry or byte limit (pathname translation cache,
  response header cache, the simulator's OS buffer cache), and
* an *LRU free list* of inactive mapped-file chunks (Section 5.4): chunks in
  use are pinned and only inactive chunks are eligible for eviction, which is
  how Flash approximates the kernel's clock replacement.

Both are built here on ordered dictionaries so the rest of the code base
never reimplements eviction logic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A size-bounded least-recently-used cache.

    The bound may be expressed in entries (``max_entries``), in a
    caller-defined cost such as bytes (``max_cost`` with ``cost_fn``), or
    both.  Lookups refresh recency; insertion evicts from the cold end until
    both bounds hold.

    Parameters
    ----------
    max_entries:
        Maximum number of entries, or ``None`` for unbounded.
    max_cost:
        Maximum total cost, or ``None`` for unbounded.
    cost_fn:
        Function computing the cost of a value; defaults to ``1`` per entry.
    on_evict:
        Optional callback invoked as ``on_evict(key, value)`` for every
        evicted (not explicitly removed) entry; used e.g. to unmap chunks.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_cost: Optional[float] = None,
        cost_fn: Optional[Callable[[V], float]] = None,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ):
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_cost is not None and max_cost < 0:
            raise ValueError("max_cost must be non-negative")
        self.max_entries = max_entries
        self.max_cost = max_cost
        self._cost_fn = cost_fn or (lambda _value: 1.0)
        self._on_evict = on_evict
        self._entries: OrderedDict[K, V] = OrderedDict()
        self._costs: dict[K, float] = {}
        self._total_cost = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    @property
    def total_cost(self) -> float:
        """Sum of the costs of all cached values."""
        return self._total_cost

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls that hit, 0.0 when never queried."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for ``key``, refreshing its recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return default

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value without refreshing recency or counting."""
        return self._entries.get(key, default)

    def put(self, key: K, value: V) -> None:
        """Insert or update ``key``, evicting cold entries as needed."""
        if key in self._entries:
            self._total_cost -= self._costs[key]
            del self._entries[key]
            del self._costs[key]
        cost = float(self._cost_fn(value))
        self._entries[key] = value
        self._costs[key] = cost
        self._total_cost += cost
        self._evict_to_bounds()

    def remove(self, key: K) -> Optional[V]:
        """Remove ``key`` without invoking the eviction callback."""
        if key not in self._entries:
            return None
        value = self._entries.pop(key)
        self._total_cost -= self._costs.pop(key)
        return value

    def clear(self) -> None:
        """Drop every entry without invoking the eviction callback."""
        self._entries.clear()
        self._costs.clear()
        self._total_cost = 0.0

    def keys(self) -> list[K]:
        """Keys ordered from least to most recently used."""
        return list(self._entries.keys())

    def _evict_to_bounds(self) -> None:
        while self._over_bounds() and self._entries:
            key, value = self._entries.popitem(last=False)
            self._total_cost -= self._costs.pop(key)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)

    def _over_bounds(self) -> bool:
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        if self.max_cost is not None and self._total_cost > self.max_cost:
            return True
        return False


class LRUList(Generic[K]):
    """An LRU-ordered free list of keys, as used by the mapped-file cache.

    Unlike :class:`LRUCache`, this structure stores only keys: the mapped-file
    cache keeps the chunk objects itself, moving chunk keys onto this list
    when a chunk becomes inactive and removing them when the chunk is reused.
    ``pop_coldest`` yields eviction victims in least-recently-used order.
    """

    def __init__(self) -> None:
        self._order: OrderedDict[K, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: K) -> bool:
        return key in self._order

    def touch(self, key: K) -> None:
        """Add ``key`` (or refresh it) as the most recently used entry."""
        if key in self._order:
            self._order.move_to_end(key)
        else:
            self._order[key] = None

    def discard(self, key: K) -> bool:
        """Remove ``key`` if present; return whether it was present."""
        if key in self._order:
            del self._order[key]
            return True
        return False

    def pop_coldest(self) -> K:
        """Remove and return the least recently used key.

        Raises :class:`KeyError` when the list is empty.
        """
        if not self._order:
            raise KeyError("pop_coldest on empty LRUList")
        key, _ = self._order.popitem(last=False)
        return key

    def coldest(self) -> Optional[K]:
        """Return (without removing) the least recently used key."""
        return next(iter(self._order), None)

"""Unified hot-response cache: the single-lookup fast path.

The paper's Figure 11 shows that Flash's performance on cached workloads
comes from aggressive caching of every per-request artifact: the pathname
translation (Section 5.2), the response header (Section 5.3) and the mapped
file (Section 5.4).  This reproduction implements all three — but a fully
cached GET still pays three separate LRU probes, a revalidating ``stat``,
a descriptor-cache acquisition and a freshly allocated request object.

:class:`HotResponseCache` collapses that chain.  It is keyed on the **raw
request-target bytes** exactly as they appear on the wire (the key the
fast-path parser produces without any decoding), and each
:class:`HotEntry` holds a fully precomposed response:

* the validated translated filesystem path with the size/mtime it was
  validated against;
* precomputed response-header blocks — 200 and 304 variants, each in
  keep-alive and close flavours — built by the same
  :class:`~repro.http.response.ResponseHeaderBuilder` the slow path uses,
  so the bytes are identical;
* the pinned cached descriptor (zero-copy ``sendfile`` transmission)
  and/or the pinned mapped chunks with their precomputed body views
  (buffered/vectored transmission).

A cache-hit GET therefore goes from bytes-on-socket to
``sendfile``/``writev`` with one dict probe.

Consistency rules
-----------------

* **Entries never outlive their pinned resources.**  The cache holds one
  reference on the descriptor and on every chunk; because a pinned
  descriptor/chunk can never be *evicted* by its owning cache, the only
  ways the resources can go away are explicit invalidation and shutdown —
  and both of those notify this cache first (``on_invalidate`` hooks on
  :class:`~repro.cache.mapped_file.FileDescriptorCache` and
  :class:`~repro.cache.mapped_file.MappedFileCache`, wired by
  :class:`~repro.core.pipeline.ContentStore`), which drops the entry and
  releases its pins.
* **Staleness is bounded by ``revalidate_interval``.**  A hit whose last
  validation is older than the interval re-``stat``\\ s the file; a changed
  (or vanished) file invalidates the entry and the request falls through
  to the full path, which re-translates and re-caches.  The interval
  amortizes the ``stat`` the pathname cache would otherwise pay per
  request; ``0`` revalidates on every hit (used by tests).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cache.lru import LRUList

#: Default entry limit.  Entries pin one descriptor and the chunks of one
#: file each, so the bound also caps how much of the fd/mmap caches the hot
#: cache can keep pinned.
DEFAULT_MAX_ENTRIES = 1024

#: Default seconds a validation verdict is reused before re-``stat``-ing.
DEFAULT_REVALIDATE_INTERVAL = 1.0


@dataclass
class HotEntry:
    """One precomposed response, pinned and ready to transmit.

    Attributes
    ----------
    target:
        Raw request-target bytes (the cache key).
    path, size, mtime:
        The validated translation this entry was built from.
    etag:
        The strong entity-tag minted at translation time; conditional
        read-side hits compare ``If-None-Match``/``If-Match``/``If-Range``
        validators against it without re-translation.
    content_length:
        Body length in bytes (equals ``size``).
    header_keep, header_close:
        Precomposed 200 header blocks for the two connection dispositions.
    header_304_keep, header_304_close:
        Precomposed 304 (Not Modified) header blocks.
    file_handle:
        The pinned :class:`~repro.cache.mapped_file.CachedFD`, when the
        zero-copy path may transmit this entry (``None`` otherwise).
    chunks:
        Pinned mapped chunks backing ``segments`` (may be empty on the
        pure-fd route).
    segments:
        Precomputed zero-copy body views for the buffered/vectored path.
    validated_at:
        ``time.monotonic()`` of the last successful freshness check.
    hits:
        Number of requests served from this entry.
    """

    target: bytes
    path: str
    size: int
    mtime: float
    content_length: int
    header_keep: bytes
    header_close: bytes
    header_304_keep: bytes
    header_304_close: bytes
    etag: str = ""
    file_handle: Optional[object] = None
    chunks: Sequence = ()
    segments: Sequence = ()
    validated_at: float = 0.0
    hits: int = field(default=0, repr=False)

    def header(self, keep_alive: bool) -> bytes:
        """The 200 header block for the given connection disposition."""
        return self.header_keep if keep_alive else self.header_close

    def header_not_modified(self, keep_alive: bool) -> bytes:
        """The 304 header block for the given connection disposition."""
        return self.header_304_keep if keep_alive else self.header_304_close


class HotResponseCache:
    """LRU cache of :class:`HotEntry` keyed on raw request-target bytes.

    Parameters
    ----------
    max_entries:
        Capacity; the least recently hit entry is released past it.  Every
        entry may pin one descriptor, so the owner should set this no
        higher than the descriptor budget it is willing to keep open
        (:class:`~repro.core.pipeline.ContentStore` clamps it to
        ``fd_cache_entries`` when zero-copy is active — pinned descriptors
        are exempt from the fd cache's own eviction, so this bound is what
        keeps total open descriptors finite).
    max_pinned_bytes:
        Budget for body bytes held alive through pinned mapped chunks
        (``0`` disables the bound — used when there is no chunk cache).
        Pinned chunks are exempt from the mapped-file cache's own byte
        budget, so without this bound a large hot set could hold mappings
        far past ``mmap_cache_bytes``.  Oversized single responses are
        simply not cached.
    revalidate_interval:
        Seconds a freshness verdict is trusted before the next hit pays a
        ``stat``.  ``0`` re-validates every hit.
    release_fd, release_chunk:
        Callables that return a pinned descriptor / mapped chunk to its
        owning cache.  Supplied by :class:`~repro.core.pipeline.ContentStore`
        so this module needs no knowledge of the pipeline layer.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_pinned_bytes: int = 0,
        revalidate_interval: float = DEFAULT_REVALIDATE_INTERVAL,
        release_fd: Optional[Callable] = None,
        release_chunk: Optional[Callable] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_pinned_bytes < 0:
            raise ValueError("max_pinned_bytes must be non-negative")
        if revalidate_interval < 0:
            raise ValueError("revalidate_interval must be non-negative")
        self.max_entries = max_entries
        self.max_pinned_bytes = max_pinned_bytes
        self.revalidate_interval = revalidate_interval
        self._release_fd = release_fd
        self._release_chunk = release_chunk
        self._entries: dict[bytes, HotEntry] = {}
        self._lru: LRUList[bytes] = LRUList()
        self._by_path: dict[str, set[bytes]] = {}
        self._pinned_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidations = 0
        self.revalidations = 0

    @property
    def pinned_bytes(self) -> int:
        """Body bytes currently held alive through pinned mapped chunks."""
        return self._pinned_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, target: bytes) -> bool:
        return target in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a precomposed entry."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the hot path ---------------------------------------------------------

    def lookup(self, target: bytes) -> Optional[HotEntry]:
        """The single-lookup hot path: one dict probe, then transmit.

        Returns the entry, freshly validated, or ``None`` (miss or stale).
        """
        entry = self._entries.get(target)
        if entry is None:
            self.misses += 1
            return None
        now = time.monotonic()
        if now - entry.validated_at > self.revalidate_interval:
            if not self._revalidate(entry, now):
                self.misses += 1
                return None
        self._lru.touch(target)
        self.hits += 1
        entry.hits += 1
        return entry

    def _revalidate(self, entry: HotEntry, now: float) -> bool:
        """Re-``stat`` the entry's file; drop the entry when it changed."""
        self.revalidations += 1
        try:
            stat = os.stat(entry.path)
        except OSError:
            self._drop(entry.target)
            return False
        if stat.st_size != entry.size or stat.st_mtime != entry.mtime:
            self._drop(entry.target)
            return False
        entry.validated_at = now
        return True

    # -- population ------------------------------------------------------------

    def insert(self, entry: HotEntry) -> bool:
        """Insert (or replace) the entry for ``entry.target``.

        The caller has already pinned ``entry.file_handle`` and
        ``entry.chunks`` on the cache's behalf; this method takes ownership
        of those pins — releasing them immediately when the entry cannot be
        admitted (a chunk-pinning entry larger than the whole byte budget),
        or when the entry is later dropped.  Returns whether the entry was
        admitted.
        """
        pinned = entry.content_length if entry.chunks else 0
        if self.max_pinned_bytes and pinned > self.max_pinned_bytes:
            # Too large to ever fit the budget: caching it would just evict
            # the entire working set for one response.
            self._release_resources(entry)
            return False
        existing = self._entries.get(entry.target)
        if existing is not None:
            self._drop(entry.target)
        entry.validated_at = time.monotonic()
        self._entries[entry.target] = entry
        self._lru.touch(entry.target)
        self._by_path.setdefault(entry.path, set()).add(entry.target)
        self._pinned_bytes += pinned
        self.insertions += 1
        while len(self._entries) > self.max_entries or (
            self.max_pinned_bytes and self._pinned_bytes > self.max_pinned_bytes
        ):
            coldest = self._lru.coldest()
            if coldest is None:  # pragma: no cover - lru tracks entries 1:1
                break
            self.evictions += 1
            self._drop(coldest)
        return True

    # -- invalidation ----------------------------------------------------------

    def invalidate_path(self, path: str) -> int:
        """Drop every entry serving ``path``; return how many were dropped.

        Wired to the descriptor and mapped-chunk caches' ``on_invalidate``
        hooks (and to pathname-cache revalidation), so an entry can never
        keep serving a file whose backing resources were invalidated.
        """
        targets = self._by_path.get(path)
        if not targets:
            return 0
        dropped = 0
        for target in list(targets):
            self._drop(target)
            dropped += 1
        return dropped

    def invalidate_target(self, target: bytes) -> bool:
        """Drop the entry for one raw target, if present."""
        if target not in self._entries:
            return False
        self._drop(target)
        return True

    def clear(self) -> None:
        """Release every entry (server shutdown, cache disable)."""
        for target in list(self._entries):
            self._drop(target)

    # -- internals ----------------------------------------------------------------

    def _drop(self, target: bytes) -> None:
        entry = self._entries.pop(target, None)
        if entry is None:
            return
        self.invalidations += 1
        self._lru.discard(target)
        targets = self._by_path.get(entry.path)
        if targets is not None:
            targets.discard(target)
            if not targets:
                del self._by_path[entry.path]
        if entry.chunks:
            self._pinned_bytes -= entry.content_length
        self._release_resources(entry)

    def _release_resources(self, entry: HotEntry) -> None:
        # Views first: they are exported from the chunks' mappings, and the
        # mapped-file cache cannot unmap a chunk while views are alive.
        entry.segments = ()
        chunks, entry.chunks = entry.chunks, ()
        if self._release_chunk is not None:
            for chunk in chunks:
                self._release_chunk(chunk)
        handle, entry.file_handle = entry.file_handle, None
        if handle is not None and self._release_fd is not None:
            self._release_fd(handle)

    def stats(self) -> dict:
        """Counter snapshot for reporting and tests."""
        return {
            "entries": len(self._entries),
            "pinned_bytes": self._pinned_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "revalidations": self.revalidations,
        }

"""Response header cache (paper Section 5.3).

HTTP servers prepend file data with a response header containing information
about the file and the server; because the header depends only on the
underlying file (its size, modification time and type) it can be cached and
reused when the same file is repeatedly requested.

The cache deliberately has no invalidation mechanism of its own: the
pathname-translation (mapping) cache detects when a cached file has changed
and the corresponding header is simply regenerated, exactly as Section 5.3
describes.  :class:`repro.cache.pathname.PathnameCache` calls
:meth:`ResponseHeaderCache.invalidate` through its ``on_invalidate`` hook.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.lru import LRUCache
from repro.http.mime import guess_mime_type
from repro.http.response import ResponseHeader, ResponseHeaderBuilder

#: Default number of cached headers; headers are small (a few hundred bytes)
#: so the paper does not bound this cache separately from the pathname cache.
DEFAULT_MAX_ENTRIES = 6000


class ResponseHeaderCache:
    """Caches pre-built 200-OK response headers keyed by file identity.

    The key is ``(path, size, mtime, keep_alive, etag, cache_max_age)``: if
    any of those change
    the lookup naturally misses and a fresh header is built, so staleness can
    only arise through the pathname cache holding a stale size/mtime — which
    is exactly the condition the pathname cache revalidates.
    """

    def __init__(
        self,
        builder: Optional[ResponseHeaderBuilder] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ):
        self.builder = builder or ResponseHeaderBuilder()
        self._cache: LRUCache[tuple, ResponseHeader] = LRUCache(max_entries=max_entries)

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def hits(self) -> int:
        """Number of lookups that reused a cached header."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of lookups that had to build a header."""
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit the cache."""
        return self._cache.hit_rate

    def get(
        self,
        path: str,
        size: int,
        mtime: float,
        *,
        keep_alive: bool = False,
        etag: Optional[str] = None,
        cache_max_age: Optional[int] = None,
    ) -> ResponseHeader:
        """Return a 200 response header for the file, building it on a miss.

        ``etag`` is the strong validator minted at translation time; it is
        derived from the same ``(size, mtime)`` identity the key carries,
        so a changed tag always changes the key and the lookup naturally
        misses.  Static 200s advertise ``Accept-Ranges: bytes`` — this
        cache only ever serves the static pipeline.  ``cache_max_age``
        rides in the key so reconfiguring the freshness lifetime can never
        resurrect a header built under the old one.
        """
        key = (path, size, mtime, keep_alive, etag, cache_max_age)
        header = self._cache.get(key)
        if header is not None:
            return header
        header = self.builder.build(
            200,
            content_length=size,
            content_type=guess_mime_type(path),
            last_modified=mtime,
            keep_alive=keep_alive,
            etag=etag,
            accept_ranges=True,
            cache_max_age=cache_max_age,
        )
        self._cache.put(key, header)
        return header

    def invalidate(self, path: str) -> int:
        """Drop every cached header for ``path``; return how many were dropped."""
        victims = [key for key in self._cache.keys() if key[0] == path]
        for key in victims:
            self._cache.remove(key)
        return len(victims)

    def clear(self) -> None:
        """Drop every cached header."""
        self._cache.clear()

"""Pathname translation cache (paper Section 5.2).

The pathname translation cache maintains mappings between requested
filenames (e.g. ``/~bob/``) and actual files on disk (e.g.
``/home/users/bob/public_html/index.html``).  It lets Flash avoid invoking
the pathname translation helpers for every incoming request, reducing both
per-request processing and the number of helper processes the server needs;
the memory spent on the cache is recovered by the reduction in helper
processes.

Entries record the translated path along with the file's size and
modification time (obtained during the "Find file" step), because the
response header cache and the mapped-file cache key off the same metadata.
An entry is revalidated lazily: when the underlying file's mtime or size
changes, the entry is refreshed and dependent caches are notified via the
``on_invalidate`` callback (this is how the response-header cache avoids
needing its own invalidation mechanism, Section 5.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.lru import LRUCache
from repro.http.response import make_etag

#: Default entry limit used by the paper's evaluation for the full Flash
#: configuration (Section 6: "a pathname cache limit of 6000 entries").
DEFAULT_MAX_ENTRIES = 6000


@dataclass(frozen=True)
class PathnameEntry:
    """A cached URL-to-file translation.

    Attributes
    ----------
    uri:
        The normalized request path that was translated.
    filesystem_path:
        Absolute path of the file that serves this URI.
    size:
        File size in bytes at translation time.
    mtime:
        File modification time at translation time.
    mtime_ns:
        Modification time in integer nanoseconds (``stat.st_mtime_ns``),
        the second ingredient of the strong entity-tag minted at
        translation time.  ``0`` (legacy constructors) falls back to a
        value derived from ``mtime``.
    """

    uri: str
    filesystem_path: str
    size: int
    mtime: float
    mtime_ns: int = 0

    @property
    def etag(self) -> str:
        """The strong entity-tag for the file state this entry validated.

        Minted from ``(size, mtime_ns)`` — see
        :func:`repro.http.response.make_etag`.  Every translation site
        records ``st_mtime_ns``, so the tag is identical no matter which
        architecture (or helper) performed the translation; the
        float-derived fallback only serves tests that construct entries
        by hand.
        """
        mtime_ns = self.mtime_ns or int(self.mtime * 1_000_000_000)
        return make_etag(self.size, mtime_ns)


class PathnameCache:
    """LRU cache of URL to filesystem-path translations.

    Parameters
    ----------
    translate:
        The (potentially blocking) translation function, typically
        :func:`repro.http.uri.translate_path` bound to a document root, or a
        helper-process proxy in the AMPED server.  It must return the
        translated absolute path.
    max_entries:
        Capacity of the cache.
    on_invalidate:
        Callback invoked with the URI whenever a cached translation is found
        to be stale; the Flash server wires this to the response-header and
        mapped-file caches.
    """

    def __init__(
        self,
        translate: Callable[[str], str],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        on_invalidate: Optional[Callable[[str, PathnameEntry], None]] = None,
    ):
        self._translate = translate
        self._cache: LRUCache[str, PathnameEntry] = LRUCache(max_entries=max_entries)
        self._on_invalidate = on_invalidate
        self.revalidations = 0

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, uri: str) -> bool:
        return uri in self._cache

    @property
    def hits(self) -> int:
        """Number of lookups satisfied without invoking the translator."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of lookups that required a translation."""
        return self._cache.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit the cache."""
        return self._cache.hit_rate

    def lookup(self, uri: str, *, revalidate: bool = True) -> PathnameEntry:
        """Return the translation for ``uri``, translating on a miss.

        When ``revalidate`` is true (the default), a hit is checked against
        the filesystem with a cheap ``stat`` and refreshed if the file
        changed; this mirrors Flash's mapping-cache-driven invalidation of
        dependent caches.

        Any exception raised by the translation function (``NotFoundError``
        and friends) propagates to the caller; negative results are not
        cached, matching the original server (a cache of valid URLs only).
        """
        entry = self._cache.get(uri)
        if entry is not None:
            if not revalidate:
                return entry
            stat = self._safe_stat(entry.filesystem_path)
            if (
                stat is not None
                and stat.st_size == entry.size
                and stat.st_mtime == entry.mtime
            ):
                return entry
            # The underlying file changed or vanished: invalidate dependents
            # and fall through to a fresh translation.
            self.revalidations += 1
            self._cache.remove(uri)
            if self._on_invalidate is not None:
                self._on_invalidate(uri, entry)

        path = self._translate(uri)
        stat = os.stat(path)
        entry = PathnameEntry(
            uri=uri,
            filesystem_path=path,
            size=stat.st_size,
            mtime=stat.st_mtime,
            mtime_ns=stat.st_mtime_ns,
        )
        self._cache.put(uri, entry)
        return entry

    def insert(self, entry: PathnameEntry) -> None:
        """Insert a translation produced elsewhere (e.g. by a helper process).

        The AMPED server's translation helpers return completed
        :class:`PathnameEntry` objects over IPC; the main process records
        them here so subsequent requests for the same URI hit the cache.
        """
        self._cache.put(entry.uri, entry)

    def invalidate(self, uri: str) -> None:
        """Explicitly drop the translation for ``uri`` (and notify dependents)."""
        entry = self._cache.remove(uri)
        if entry is not None and self._on_invalidate is not None:
            self._on_invalidate(uri, entry)

    def clear(self) -> None:
        """Drop every translation."""
        self._cache.clear()

    @staticmethod
    def _safe_stat(path: str):
        try:
            return os.stat(path)
        except OSError:
            return None

"""Single-Process Event-Driven (SPED) build (paper Section 3.3).

The SPED server uses the same event loop, connection state machine, caches
and optimizations as Flash, but performs every potentially blocking disk
operation inline in the single server process.  On cached workloads this is
the fastest architecture — there is no helper IPC and no memory-residency
testing — but whenever a request requires disk activity *all* user-level
processing stops, which is exactly the weakness the evaluation exposes on
disk-bound workloads (Figures 9 and 10).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.residency import ResidencyTester
from repro.core.config import ServerConfig
from repro.core.helpers import advise_willneed
from repro.core.pipeline import ContentStore
from repro.core.send_path import sendfile_available
from repro.core.server import BaseEventDrivenServer
from repro.http.request import HTTPRequest


class SPEDServer(BaseEventDrivenServer):
    """Flash-SPED: the shared code base with inline (blocking) disk operations.

    The base class already implements the inline driver hooks, so this class
    only fixes the architecture label and disables the memory-residency test
    (SPED transmits mapped data directly; the paper attributes Flash's small
    deficit on fully cached workloads to the residency test AMPED must do).

    The single-lookup hot path applies to SPED in its purest form: the base
    ``hot_content_ready`` hook accepts every hot-response-cache hit without
    a residency gate, so a repeat GET goes from the fast parse straight to
    ``sendfile`` — and a cold page simply blocks the process during
    transmission, faithful to SPED.
    """

    architecture = "sped"

    def __init__(
        self,
        config: ServerConfig,
        residency_tester: Optional[ResidencyTester] = None,
    ):
        super().__init__(config, residency_tester=residency_tester)
        # SPED never checks residency: it simply touches the pages and takes
        # the page fault (blocking the whole process) if they are missing.
        self.store.config = config
        self._skip_residency_test = True

    def prepare_content_async(self, request: HTTPRequest, entry, callback) -> None:
        # With the zero-copy path active, SPED transmits straight from the
        # cached descriptor and never consults the mapping (it does no
        # residency test), so skip pinning mapped chunks for the response.
        map_body = not (self.config.zero_copy and sendfile_available())
        try:
            content = self.store.build_response(request, entry, map_body=map_body)
        except OSError as exc:
            callback(None, exc)
            return
        # Touch the data inline.  If it is not in memory, this blocks the
        # whole server while the disk read completes — SPED's defining cost.
        # When the response will go out via sendfile the kernel pages the
        # file in during transmission (still blocking this process on a
        # miss, which is faithful SPED behaviour), so pre-touching the
        # mapping would only add a redundant pass over the data.
        if content.chunks and not (
            self.config.zero_copy and content.file_handle is not None
        ):
            ContentStore.touch_chunks(content.chunks)
        elif content.file_handle is not None and self.config.helper_warming:
            # SPED has no helpers, but posix_fadvise(WILLNEED) returns
            # immediately after queueing readahead, so the hint is safe on
            # the main loop: a cold sendfile that follows overlaps with the
            # readahead already in flight instead of paying the full
            # synchronous read.  Faithful SPED still blocks on a miss.
            # Advised once per cached-descriptor lifetime: SPED does no
            # residency test, so per-request re-advising would put a
            # syscall on the hot fully-cached path for nothing.  Only the
            # transmitted window is hinted; a Range (206) response's
            # partial advise does not consume the descriptor's one
            # full-body advise.
            handle = content.file_handle
            if not handle.advised:
                # Only the transmitted span is hinted (a multipart 206
                # advises the window-covering span in one call).
                warm_offset, warm_length = content.warm_window()
                advise_willneed(handle.fd, warm_offset, warm_length)
                if content.status == 200:
                    handle.advised = True
        callback(content, None)

"""The four server architectures built from one code base (paper Section 6).

To compare architectures without implementation noise, the paper builds
AMPED (Flash), SPED, MP and MT servers from the same code base by replacing
only the event/helper dispatch mechanism.  This package does the same:

* :class:`AMPEDServer` — alias of :class:`repro.core.server.FlashServer`;
* :class:`SPEDServer` — the same event loop with disk work done inline;
* :class:`MPServer` — a pool of worker *processes*, each handling one
  request at a time with blocking I/O and its own (smaller) caches;
* :class:`MTServer` — a pool of worker *threads* sharing one set of caches
  protected by a lock.

:func:`create_server` builds any of them by name, which is what the
examples and the functional benchmark use.
"""

from repro.core.config import ServerConfig
from repro.core.server import FlashServer
from repro.servers.mp import MPServer
from repro.servers.mt import MTServer
from repro.servers.sped import SPEDServer

#: The AMPED build is the Flash server itself.
AMPEDServer = FlashServer

#: Architecture name -> server class, as used by :func:`create_server`.
ARCHITECTURES = {
    "amped": AMPEDServer,
    "flash": AMPEDServer,
    "sped": SPEDServer,
    "mp": MPServer,
    "mt": MTServer,
}


def create_server(architecture: str, config: ServerConfig, **kwargs):
    """Instantiate a server of the named architecture.

    Parameters
    ----------
    architecture:
        One of ``"amped"`` (or ``"flash"``), ``"sped"``, ``"mp"``, ``"mt"``.
    config:
        The shared configuration; the MP build derives its per-process
        configuration from it automatically.
    kwargs:
        Extra keyword arguments forwarded to the server constructor (e.g.
        ``residency_tester`` for the event-driven builds).
    """
    key = architecture.lower()
    if key not in ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {architecture!r}; expected one of {sorted(ARCHITECTURES)}"
        )
    return ARCHITECTURES[key](config, **kwargs)


__all__ = [
    "AMPEDServer",
    "SPEDServer",
    "MPServer",
    "MTServer",
    "ARCHITECTURES",
    "create_server",
    "ServerConfig",
]

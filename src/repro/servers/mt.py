"""Multi-Threaded (MT) build (paper Section 3.2).

The MT server employs multiple independent threads of control within a
single shared address space; each thread performs all steps of one HTTP
request before accepting a new one.  All threads share the application-level
caches, so (unlike MP) there is no cache replication — but accesses must be
synchronized, which is the cost the paper highlights ("this result was
achieved by carefully minimizing lock contention").

Here the shared :class:`ContentStore` is constructed with ``thread_safe=True``
so its cache updates go through a lock; the accept queue is shared exactly as
the kernel shares it for real MT servers.
"""

from __future__ import annotations

import errno
import socket
import threading
import time
from typing import Optional

from repro.cgi.runner import CGIRunner
from repro.core.admission import (
    ACCEPT_BACKOFF_INITIAL,
    ACCEPT_BACKOFF_MAX,
    ACCEPT_RESOURCE,
    ACCEPT_TRANSIENT,
    AdmissionController,
    classify_accept_error,
)
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore, ServerStats
from repro.core.sse import SSEHub
from repro.servers.blocking import handle_client
from repro.testing.faults import faults


class MTServer:
    """Flash-MT: one worker thread per concurrently served request."""

    architecture = "mt"

    def __init__(self, config: ServerConfig):
        self.config = config
        self.store = ContentStore(config, thread_safe=True)
        self.cgi_runner = CGIRunner(
            config.cgi_programs,
            prefix=config.cgi_prefix,
            stream_depth=config.cgi_stream_depth,
        )
        #: SSE hub shared by every worker thread: ``publish`` is
        #: thread-safe, subscribers are driven by the worker serving the
        #: subscription, and the drop counter goes through the store lock.
        self.sse_hub: Optional[SSEHub] = None
        if config.sse_path:
            self.sse_hub = SSEHub(
                queue_limit=config.sse_queue_limit,
                policy=config.sse_policy,
                on_drop=self._on_sse_drop,
            )
            self.sse_hub.start_ticker(config.sse_heartbeat)
        self._listen_sock: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stop_event = threading.Event()
        self._drain_event = threading.Event()
        self._closed = False
        #: One controller shared by every worker thread (it is locked
        #: internally); the in-flight connection sockets back both the
        #: admission count and the drain-deadline force-close.
        self.admission = AdmissionController(
            max_connections=config.max_connections,
            resume_fraction=config.admission_resume,
            retry_after=config.retry_after,
        )
        self._active_lock = threading.Lock()
        self._active: set[socket.socket] = set()

    # -- binding --------------------------------------------------------------

    def bind(self) -> None:
        """Create the shared listening socket.  Idempotent."""
        if self._listen_sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.config.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise RuntimeError("SO_REUSEPORT is not available on this platform")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(self.config.listen_backlog)
        # A short accept timeout lets worker threads notice shutdown without
        # needing signals; it does not affect steady-state behaviour.
        sock.settimeout(0.2)
        self._listen_sock = sock

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._listen_sock is None:
            raise RuntimeError("server is not bound yet")
        return self._listen_sock.getsockname()[:2]

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.address[1]

    @property
    def stats(self) -> ServerStats:
        """Shared statistics (guarded by the store's lock during updates)."""
        return self.store.stats

    # -- running ---------------------------------------------------------------

    def start(self) -> "MTServer":
        """Bind and launch the worker threads; returns immediately."""
        if self._threads:
            return self
        self.bind()
        self._threads = [
            threading.Thread(target=self._worker_main, name=f"mt-worker-{i}", daemon=True)
            for i in range(self.config.num_workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def _worker_main(self) -> None:
        listen_sock = self._listen_sock
        assert listen_sock is not None
        backoff = ACCEPT_BACKOFF_INITIAL
        while not self._stop_event.is_set() and not self._drain_event.is_set():
            try:
                if faults.take("accept_emfile"):
                    raise OSError(errno.EMFILE, "injected fd exhaustion")
                client_sock, _address = listen_sock.accept()
            except socket.timeout:
                continue
            except OSError as exc:
                kind = classify_accept_error(exc)
                if kind == ACCEPT_TRANSIENT:
                    # The arrival aborted (or a signal landed): the next one
                    # may be fine, retry immediately.
                    continue
                if kind == ACCEPT_RESOURCE:
                    # Out of descriptors (or buffers): retrying immediately
                    # cannot succeed and used to busy-spin this thread.
                    # Shed one backlogged arrival through the sentinel
                    # reserve, then back off exponentially (woken early by
                    # shutdown) until something drains.
                    with self.store.stats_lock():
                        self.store.stats.fd_exhaustion_events += 1
                    self.admission.shed_one_pending(listen_sock)
                    self._stop_event.wait(backoff)
                    backoff = min(backoff * 2, ACCEPT_BACKOFF_MAX)
                    continue
                # Fatal (EBADF and friends): the listener is gone, which is
                # the normal shutdown race — this worker is done.
                return
            backoff = ACCEPT_BACKOFF_INITIAL
            with self._active_lock:
                open_count = len(self._active)
            if not self.admission.admit(open_count):
                with self.store.stats_lock():
                    self.store.stats.connections_accepted += 1
                    self.store.stats.connections_shed += 1
                self.admission.shed(client_sock)
                continue
            with self._active_lock:
                self._active.add(client_sock)
            try:
                handle_client(
                    client_sock,
                    self.store,
                    self.config,
                    self.cgi_runner,
                    drain_check=self._drain_event.is_set,
                    sse_hub=self.sse_hub,
                )
            finally:
                with self._active_lock:
                    self._active.discard(client_sock)

    # -- graceful drain ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the server is in drain mode (stopping gracefully)."""
        return self._drain_event.is_set()

    @property
    def open_connections(self) -> int:
        """Number of connections currently being served by workers."""
        with self._active_lock:
            return len(self._active)

    def _on_sse_drop(self) -> None:
        """Hub overflow hook: count the shed event under the store lock."""
        with self.store.stats_lock():
            self.store.stats.sse_dropped_events += 1

    def request_drain(self) -> None:
        """Enter drain mode (signal-safe): workers stop accepting, finish
        their in-flight exchanges with ``Connection: close``, and exit."""
        self._drain_event.set()
        # Ending the subscriptions lets workers blocked in an SSE wait
        # deliver the backlog, send the terminator and exit promptly.
        if self.sse_hub is not None:
            self.sse_hub.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain and wait; returns True when every worker exited in time.

        After ``drain_timeout`` (or ``timeout``) expires, stragglers'
        client sockets are shut down so their blocking calls fail and the
        workers exit — the drain deadline force-closes what it must.
        """
        self.request_drain()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        stragglers = [thread for thread in self._threads if thread.is_alive()]
        if stragglers:
            with self._active_lock:
                for client in list(self._active):
                    self.store.stats.drain_forced_closes += 1
                    try:
                        client.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
            for thread in stragglers:
                thread.join(timeout=1.0)
        self._threads = [thread for thread in self._threads if thread.is_alive()]
        return not self._threads

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting, wait for workers and release resources."""
        self._stop_event.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self.close()

    def close(self) -> None:
        """Close sockets and caches.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        self.admission.close()
        if self.sse_hub is not None:
            self.sse_hub.shutdown()
            self.sse_hub = None
        self.cgi_runner.shutdown()
        self.store.close()

    def __enter__(self) -> "MTServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

"""Multi-Threaded (MT) build (paper Section 3.2).

The MT server employs multiple independent threads of control within a
single shared address space; each thread performs all steps of one HTTP
request before accepting a new one.  All threads share the application-level
caches, so (unlike MP) there is no cache replication — but accesses must be
synchronized, which is the cost the paper highlights ("this result was
achieved by carefully minimizing lock contention").

Here the shared :class:`ContentStore` is constructed with ``thread_safe=True``
so its cache updates go through a lock; the accept queue is shared exactly as
the kernel shares it for real MT servers.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.cgi.runner import CGIRunner
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore, ServerStats
from repro.servers.blocking import handle_client


class MTServer:
    """Flash-MT: one worker thread per concurrently served request."""

    architecture = "mt"

    def __init__(self, config: ServerConfig):
        self.config = config
        self.store = ContentStore(config, thread_safe=True)
        self.cgi_runner = CGIRunner(config.cgi_programs, prefix=config.cgi_prefix)
        self._listen_sock: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stop_event = threading.Event()
        self._closed = False

    # -- binding --------------------------------------------------------------

    def bind(self) -> None:
        """Create the shared listening socket.  Idempotent."""
        if self._listen_sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(self.config.listen_backlog)
        # A short accept timeout lets worker threads notice shutdown without
        # needing signals; it does not affect steady-state behaviour.
        sock.settimeout(0.2)
        self._listen_sock = sock

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._listen_sock is None:
            raise RuntimeError("server is not bound yet")
        return self._listen_sock.getsockname()[:2]

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.address[1]

    @property
    def stats(self) -> ServerStats:
        """Shared statistics (guarded by the store's lock during updates)."""
        return self.store.stats

    # -- running ---------------------------------------------------------------

    def start(self) -> "MTServer":
        """Bind and launch the worker threads; returns immediately."""
        if self._threads:
            return self
        self.bind()
        self._threads = [
            threading.Thread(target=self._worker_main, name=f"mt-worker-{i}", daemon=True)
            for i in range(self.config.num_workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def _worker_main(self) -> None:
        assert self._listen_sock is not None
        while not self._stop_event.is_set():
            try:
                client_sock, _address = self._listen_sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            handle_client(client_sock, self.store, self.config, self.cgi_runner)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop accepting, wait for workers and release resources."""
        self._stop_event.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self.close()

    def close(self) -> None:
        """Close sockets and caches.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        self.cgi_runner.shutdown()
        self.store.close()

    def __enter__(self) -> "MTServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

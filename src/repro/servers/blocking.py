"""Blocking per-connection handler shared by the MP and MT builds.

In the MP and MT architectures a worker (process or thread) executes the
basic request-processing steps *sequentially* for one connection at a time:
read the request, find the file, send the response header, then the data,
possibly looping for keep-alive.  Overlap between connections comes from the
operating system scheduling other workers whenever this one blocks.

The handler reuses the exact same pipeline (:class:`ContentStore`) as the
event-driven builds so that the only difference between architectures is the
concurrency strategy, per the paper's methodology.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.cgi.runner import CGIRunner
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore
from repro.http.errors import HTTPError
from repro.http.request import RequestParser
from repro.http.response import build_error_response


def handle_client(
    sock: socket.socket,
    store: ContentStore,
    config: ServerConfig,
    cgi_runner: Optional[CGIRunner] = None,
    max_requests: Optional[int] = None,
) -> int:
    """Serve one client connection to completion with blocking I/O.

    Returns the number of requests served on the connection.  The socket is
    always closed before returning.  Exceptions from client misbehaviour are
    converted into HTTP error responses; unexpected internal errors close
    the connection after a 500.
    """
    served = 0
    store.stats.connections_accepted += 1
    try:
        sock.settimeout(config.connection_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        leftover = b""
        while True:
            parser = RequestParser(max_header_bytes=config.max_header_bytes)
            try:
                complete = parser.feed(leftover) if leftover else False
                while not complete:
                    data = sock.recv(config.socket_io_size)
                    if not data:
                        return served
                    complete = parser.feed(data)
            except HTTPError as exc:
                _send_error(sock, store, exc.status, exc.message)
                return served
            except socket.timeout:
                return served

            request = parser.request
            leftover = parser.remainder
            store.stats.requests += 1
            keep_alive = bool(request.keep_alive and config.keep_alive)

            try:
                if request.is_cgi:
                    store.stats.cgi_requests += 1
                    if cgi_runner is None:
                        raise HTTPError("dynamic content disabled", status=503)
                    body = cgi_runner.run(request)
                    header = store.header_builder.build(
                        200,
                        content_length=len(body),
                        content_type="text/html",
                        keep_alive=keep_alive,
                    ).raw
                    _send_all(sock, store, [header, body])
                else:
                    store.stats.blocking_translations += 1
                    entry = store.translate(request.path)
                    content = store.build_response(request, entry, keep_alive=keep_alive)
                    try:
                        _send_all(sock, store, [content.header, *content.segments])
                    finally:
                        content.release(store)
                store.stats.responses_ok += 1
            except HTTPError as exc:
                _send_error(sock, store, exc.status, exc.message, keep_alive=keep_alive)
                if not keep_alive:
                    return served
            except OSError:
                return served

            served += 1
            if not keep_alive:
                return served
            if max_requests is not None and served >= max_requests:
                return served
    finally:
        store.stats.connections_closed += 1
        try:
            sock.close()
        except OSError:
            pass


def _send_all(sock: socket.socket, store: ContentStore, buffers) -> None:
    for buffer in buffers:
        if not len(buffer):
            continue
        sock.sendall(buffer)
        store.stats.bytes_sent += len(buffer)


def _send_error(
    sock: socket.socket,
    store: ContentStore,
    status: int,
    message: str,
    keep_alive: bool = False,
) -> None:
    store.stats.responses_error += 1
    payload = build_error_response(
        status, message, builder=store.header_builder, keep_alive=keep_alive
    )
    try:
        sock.sendall(payload)
        store.stats.bytes_sent += len(payload)
    except OSError:
        pass

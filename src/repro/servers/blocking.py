"""Blocking per-connection handler shared by the MP and MT builds.

In the MP and MT architectures a worker (process or thread) executes the
basic request-processing steps *sequentially* for one connection at a time:
read the request, find the file, send the response header, then the data,
possibly looping for keep-alive.  Overlap between connections comes from the
operating system scheduling other workers whenever this one blocks.

The handler reuses the exact same pipeline (:class:`ContentStore`) as the
event-driven builds so that the only difference between architectures is the
concurrency strategy, per the paper's methodology.

The slow-client deadlines the event-driven builds arm on their timer wheel
are honoured here with phase-based socket timeouts driven by the same
configuration knobs:

* waiting for a keep-alive follow-up request uses ``idle_timeout`` (expiry
  closes silently);
* once the first byte of a request head has arrived, an *absolute*
  ``header_timeout`` budget applies — each ``recv`` gets the remaining
  budget, so a slowloris client dribbling single bytes cannot extend it —
  and expiry answers ``408 Request Timeout``;
* transmission runs under ``write_stall_timeout``: ``sendall`` treats its
  timeout as a bound on the whole call (Python ≥ 3.5 semantics), and the
  ``sendfile`` loop waits for buffer space at most that long per window —
  both close the connection on expiry.

``<= 0`` disables the corresponding deadline, exactly as in the
event-driven builds.
"""

from __future__ import annotations

import os
import select
import socket
import struct
import time
from typing import Callable, Optional

from repro.cgi.runner import CGIRunner
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore, StaticContent
from repro.core.send_path import SENDFILE_FALLBACK_ERRNOS, sendfile_available
from repro.core.sse import SSEHub
from repro.core.streaming import (
    CHUNKED_TERMINATOR,
    END_OF_STREAM,
    WOULD_BLOCK,
    chunk_frame,
)
from repro.http.errors import HTTPError
from repro.http.request import RequestParser
from repro.http.response import build_error_response

#: While a ``drain_check`` is supplied, idle keep-alive waits poll in
#: quanta of this many seconds so a blocking worker notices a drain
#: promptly instead of after a full ``idle_timeout``.
DRAIN_POLL_INTERVAL = 0.2


def handle_client(
    sock: socket.socket,
    store: ContentStore,
    config: ServerConfig,
    cgi_runner: Optional[CGIRunner] = None,
    max_requests: Optional[int] = None,
    drain_check: Optional[Callable[[], bool]] = None,
    sse_hub: Optional[SSEHub] = None,
) -> int:
    """Serve one client connection to completion with blocking I/O.

    Returns the number of requests served on the connection.  The socket is
    always closed before returning.  Exceptions from client misbehaviour are
    converted into HTTP error responses; unexpected internal errors close
    the connection after a 500.

    ``drain_check`` is the MT/MP drain hook: while it returns True the
    connection winds down gracefully — the response to the last buffered
    request carries ``Connection: close`` (buffered pipelined requests
    still complete first), and an idle keep-alive wait returns immediately
    instead of sitting out its idle budget.
    """
    served = 0
    with store.stats_lock():
        store.stats.connections_accepted += 1
    header_timeout = config.header_timeout
    # ``None`` puts the socket in plain blocking mode: deadline disabled.
    idle_timeout = config.idle_timeout if config.idle_timeout > 0 else None
    write_timeout = config.write_stall_timeout if config.write_stall_timeout > 0 else None
    try:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        leftover = b""
        while True:
            parser = RequestParser(max_header_bytes=config.max_header_bytes)
            try:
                complete = parser.feed(leftover) if leftover else False
                # The header budget is absolute — from the start of header
                # reading (accept, buffered pipelined bytes, or the first
                # byte after a keep-alive idle wait) to a complete head.
                # Each recv gets the *remaining* budget, so a client
                # dribbling one byte per interval cannot extend it.
                reading_head = bool(leftover) or served == 0
                header_deadline = (
                    time.monotonic() + header_timeout
                    if reading_head and header_timeout > 0
                    else None
                )
                idle_deadline = (
                    time.monotonic() + idle_timeout
                    if not reading_head and idle_timeout is not None
                    else None
                )
                while not complete:
                    if not reading_head:
                        # Between keep-alive exchanges: the idle budget
                        # applies until the next request's first byte.
                        # With a drain hook the wait polls in short quanta
                        # so a draining worker closes its idle connections
                        # promptly — an idle peer is owed nothing.
                        if drain_check is not None and drain_check():
                            return served
                        wait = (
                            None
                            if idle_deadline is None
                            else idle_deadline - time.monotonic()
                        )
                        if wait is not None and wait <= 0:
                            with store.stats_lock():
                                store.stats.timeouts_idle += 1
                            return served
                        if drain_check is not None:
                            wait = (
                                DRAIN_POLL_INTERVAL
                                if wait is None
                                else min(wait, DRAIN_POLL_INTERVAL)
                            )
                        sock.settimeout(wait)
                        try:
                            data = sock.recv(config.socket_io_size)
                        except socket.timeout:
                            if drain_check is not None and (
                                idle_deadline is None
                                or time.monotonic() < idle_deadline
                            ):
                                # A poll quantum expired, not the idle
                                # budget: re-check drain and keep waiting.
                                continue
                            with store.stats_lock():
                                store.stats.timeouts_idle += 1
                            return served
                        if not data:
                            return served
                        reading_head = True
                        if header_timeout > 0:
                            header_deadline = time.monotonic() + header_timeout
                        complete = parser.feed(data)
                        continue
                    remaining = None
                    if header_deadline is not None:
                        remaining = header_deadline - time.monotonic()
                        if remaining <= 0:
                            raise socket.timeout("request header timeout")
                    sock.settimeout(remaining)
                    data = sock.recv(config.socket_io_size)
                    if not data:
                        return served
                    complete = parser.feed(data)
            except HTTPError as exc:
                sock.settimeout(write_timeout)
                _send_error(sock, store, exc.status, exc.message)
                return served
            except socket.timeout:
                # Mid-parse expiry: the partial head is answered 408, like
                # the event-driven builds' header-deadline expiry.
                with store.stats_lock():
                    store.stats.timeouts_header += 1
                sock.settimeout(write_timeout)
                _send_error(sock, store, 408, "request header timeout")
                return served

            request = parser.request
            leftover = parser.remainder
            with store.stats_lock():
                store.stats.requests += 1
            keep_alive = bool(request.keep_alive and config.keep_alive)
            if keep_alive and drain_check is not None and drain_check() and not leftover:
                # Draining and nothing further is buffered: this response is
                # the connection's last, and it says so.  (Buffered
                # pipelined requests keep the connection alive until the
                # last of them — in-flight work completes.)
                keep_alive = False

            sock.settimeout(write_timeout)
            try:
                if config.sse_path and request.path == config.sse_path:
                    if sse_hub is None or request.method not in ("GET", "HEAD"):
                        raise HTTPError("no event stream here", status=404)
                    _serve_sse(sock, store, sse_hub, request, drain_check)
                    # An event stream has no natural end: the connection is
                    # spent once the subscription finishes.
                    return served + 1
                if request.is_cgi:
                    with store.stats_lock():
                        store.stats.cgi_requests += 1
                    if cgi_runner is None:
                        raise HTTPError("dynamic content disabled", status=503)
                    body = cgi_runner.run(request)
                    if isinstance(body, (bytes, bytearray, memoryview)):
                        header = store.header_builder.build(
                            200,
                            content_length=len(body),
                            content_type="text/html",
                            keep_alive=keep_alive,
                        ).raw
                        _send_all(sock, store, [header, body])
                    else:
                        # Streaming application: chunks flow out as the
                        # worker produces them, through the bounded queue
                        # that paces the application (see repro.cgi.runner).
                        keep_alive = _serve_stream(
                            sock, store, request, body, keep_alive
                        )
                else:
                    content = _lookup_hot(store, config, request, keep_alive)
                    if content is None:
                        with store.stats_lock():
                            store.stats.blocking_translations += 1
                        entry = store.translate(request.path)
                        # Like SPED, the blocking workers run no residency
                        # test, so when the response will go out via
                        # sendfile there is no reason to pin mapped chunks
                        # for it.
                        map_body = not (config.zero_copy and sendfile_available())
                        content = store.build_response(
                            request, entry, keep_alive=keep_alive, map_body=map_body
                        )
                        # Populate the single-lookup hot path: the next
                        # repeat GET (in this worker/process) skips
                        # translation, header build and the descriptor
                        # probe, exactly like the event-driven builds.
                        store.hot_insert(request, entry, content)
                    try:
                        _send_content(sock, store, content)
                    finally:
                        content.release(store)
                with store.stats_lock():
                    store.stats.responses_ok += 1
            except HTTPError as exc:
                _send_error(sock, store, exc.status, exc.message, keep_alive=keep_alive)
                if not keep_alive:
                    return served
            except socket.timeout:
                # No byte moved within the write-stall budget (sendall
                # bounds the whole transfer; the sendfile loop bounds each
                # wait for buffer space): reap the stalled reader.
                # Abortively — an orderly close would leave the kernel
                # background-flushing the send buffer to a peer that is
                # not reading.
                with store.stats_lock():
                    store.stats.timeouts_write_stall += 1
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
                return served
            except OSError:
                return served

            served += 1
            if not keep_alive:
                return served
            if max_requests is not None and served >= max_requests:
                return served
    finally:
        with store.stats_lock():
            store.stats.connections_closed += 1
        try:
            sock.close()
        except OSError:
            pass


def _lookup_hot(
    store: ContentStore,
    config: ServerConfig,
    request,
    keep_alive: bool,
) -> Optional[StaticContent]:
    """The blocking-handler side of the single-lookup hot path.

    MP and MT workers used to pay the three-probe slow path for every
    repeat GET (so the fig11 ablation said nothing about them); this gives
    them the same one-probe fast path as the event-driven builds, gated on
    the same ``hot_cache`` toggle and byte-identical by construction (the
    entries precompose their headers with the shared builder).  Workers
    transmit hot hits unconditionally, like SPED: the blocking
    architectures run no residency test — a cold page simply blocks this
    worker, which is exactly their concurrency model.
    """
    if not config.hot_cache or request.method not in ("GET", "HEAD"):
        return None
    return store.hot_lookup(
        request.uri.encode("latin-1"),
        keep_alive,
        head=request.is_head,
        if_modified_since=request.if_modified_since,
        if_none_match=request.if_none_match,
        if_match=request.if_match,
        if_unmodified_since=request.if_unmodified_since,
        range_header=request.range_header,
        if_range=request.if_range,
    )


def _send_content(sock: socket.socket, store: ContentStore, content: StaticContent) -> None:
    """Transmit one static response, zero-copy when a descriptor is pinned.

    ``os.sendfile`` is driven directly with explicit offsets: unlike
    ``socket.sendfile`` it never seeks the descriptor, so MT workers can
    serve the same cached descriptor concurrently (the fd's file position
    is shared state).  ``sock.settimeout`` puts the fd in non-blocking
    mode, so a full send buffer surfaces as ``BlockingIOError`` and is
    waited out with ``select`` bounded by the socket timeout.

    A ``multipart/byteranges`` response alternates buffered part framing
    with one positional ``sendfile`` window per part — the blocking-worker
    mirror of the event-driven builds' iterated-window send path.
    """
    if content.file_handle is not None and sendfile_available():
        with store.stats_lock():
            store.stats.sendfile_responses += 1
        if content.is_multipart:
            _send_all(sock, store, [content.header])
            for part in content.parts:
                _send_all(sock, store, [part.head])
                _sendfile_blocking(sock, store, content, part.offset, part.length)
            _send_all(sock, store, [content.trailer])
            return
        _send_all(sock, store, [content.header])
        _sendfile_blocking(
            sock, store, content, content.body_offset, content.content_length
        )
        return
    _send_all(sock, store, [content.header, *content.segments])


def _sendfile_blocking(
    sock: socket.socket,
    store: ContentStore,
    content: StaticContent,
    offset: int,
    remaining: int,
) -> None:
    fd = content.file_handle.fd
    timeout = sock.gettimeout()
    while remaining > 0:
        try:
            sent = os.sendfile(sock.fileno(), fd, offset, remaining)
        except (BlockingIOError, InterruptedError):
            _, writable, _ = select.select([], [sock], [], timeout)
            if not writable:
                raise socket.timeout("timed out waiting for send-buffer space")
            continue
        except OSError as exc:
            if exc.errno not in SENDFILE_FALLBACK_ERRNOS:
                raise
            # sendfile unsupported for this fd/socket pair: finish the
            # response buffered, resuming at the exact offset reached.
            with store.stats_lock():
                store.stats.sendfile_fallbacks += 1
            _send_all(sock, store, [os.pread(fd, remaining, offset)])
            return
        if sent == 0:
            # EOF before the expected count: the file shrank underneath us.
            # The declared Content-Length can no longer be honoured, so the
            # connection must die — continuing would desynchronize the
            # client's HTTP framing on a keep-alive socket.
            raise ConnectionError(
                f"file shrank during sendfile: {remaining} bytes undelivered"
            )
        offset += sent
        remaining -= sent
        with store.stats_lock():
            store.stats.bytes_sent += sent


def _send_all(sock: socket.socket, store: ContentStore, buffers) -> None:
    for buffer in buffers:
        if not len(buffer):
            continue
        sock.sendall(buffer)
        with store.stats_lock():
            store.stats.bytes_sent += len(buffer)


def _serve_stream(
    sock: socket.socket,
    store: ContentStore,
    request,
    chunks,
    keep_alive: bool,
    content_type: str = "text/html",
) -> bool:
    """Transmit a streamed (unknown-length) response with blocking writes.

    HTTP/1.1 gets chunked framing (keep-alive preserved); HTTP/1.0 gets
    the close-delimited fallback.  Returns the connection's keep-alive
    disposition afterwards: False when close-delimited framing or a
    mid-stream producer failure (the truncation is the error signal —
    the header already left, so no error response is possible) spent it.
    Write-stall expiry (``socket.timeout``) propagates to the caller's
    reaping handler like any other response.
    """
    chunked = request.version == "HTTP/1.1"
    if not chunked:
        keep_alive = False
    with store.stats_lock():
        store.stats.streamed_responses += 1
        if chunked:
            store.stats.chunked_responses += 1
    header = store.header_builder.build_stream(
        200, content_type=content_type, chunked=chunked, keep_alive=keep_alive
    ).raw
    _send_all(sock, store, [header])
    try:
        for chunk in chunks:
            if not len(chunk):
                continue
            _send_all(sock, store, chunk_frame(chunk) if chunked else [chunk])
        if chunked:
            _send_all(sock, store, [CHUNKED_TERMINATOR])
        return keep_alive
    except RuntimeError:
        # Producer failed mid-stream: suppress the terminator so the
        # client sees unambiguous truncation, and spend the connection.
        return False
    finally:
        closer = getattr(chunks, "close", None)
        if closer is not None:
            closer()


def _serve_sse(
    sock: socket.socket,
    store: ContentStore,
    hub: SSEHub,
    request,
    drain_check: Optional[Callable[[], bool]],
) -> None:
    """Drive one SSE subscription to its end with blocking writes.

    The worker thread blocks in :meth:`SSESubscriber.wait` between
    events, in quanta of ``DRAIN_POLL_INTERVAL`` so it notices a drain
    (ends the stream gracefully) and a departed peer (EOF on a peek)
    promptly.  The subscriber queue stays bounded by the hub's overflow
    policy the whole time — a slow consumer here blocks only its own
    worker, which is exactly the MT/MP concurrency model.
    """
    subscriber = hub.subscribe()
    chunked = request.version == "HTTP/1.1"
    with store.stats_lock():
        store.stats.sse_connections += 1
        store.stats.streamed_responses += 1
        if chunked:
            store.stats.chunked_responses += 1
        store.stats.responses_ok += 1
    try:
        header = store.header_builder.build_stream(
            200,
            content_type="text/event-stream",
            chunked=chunked,
            keep_alive=False,
            cache_control="no-store",
        ).raw
        _send_all(sock, store, [header])
        while True:
            segment = subscriber.next_segment()
            if segment is END_OF_STREAM:
                if chunked:
                    _send_all(sock, store, [CHUNKED_TERMINATOR])
                return
            if segment is WOULD_BLOCK:
                if drain_check is not None and drain_check():
                    # Graceful drain: queued backlog still delivers, then
                    # the loop sees END_OF_STREAM and sends the terminator.
                    subscriber.end_stream()
                    continue
                if not subscriber.wait(DRAIN_POLL_INTERVAL):
                    readable, _, _ = select.select([sock], [], [], 0)
                    if readable:
                        probe = sock.recv(1, socket.MSG_PEEK)
                        if not probe:
                            return
                continue
            _send_all(sock, store, chunk_frame(segment) if chunked else [segment])
    finally:
        subscriber.close()


def _send_error(
    sock: socket.socket,
    store: ContentStore,
    status: int,
    message: str,
    keep_alive: bool = False,
) -> None:
    with store.stats_lock():
        store.stats.responses_error += 1
    payload = build_error_response(
        status, message, builder=store.header_builder, keep_alive=keep_alive
    )
    try:
        sock.sendall(payload)
        with store.stats_lock():
            store.stats.bytes_sent += len(payload)
    except OSError:
        pass

"""Multi-Process (MP) build (paper Section 3.1).

The MP server assigns a *process* to each concurrently served request:
every worker performs the basic steps sequentially with blocking I/O, and
the operating system overlaps disk, CPU and network activity by switching
between workers.  Each process has a private address space, so no
synchronization is needed — but the application-level caches are replicated
per process, must therefore be configured smaller, suffer more compulsory
misses, and use memory less efficiently (Section 4.2); consolidating request
statistics requires inter-process communication (here a queue drained at
shutdown).

Workers accept from a listening socket created before the fork, exactly like
Apache's pre-forking model on UNIX.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import socket
import time
from typing import Optional

from repro.cgi.runner import CGIRunner
from repro.core.admission import (
    ACCEPT_BACKOFF_INITIAL,
    ACCEPT_BACKOFF_MAX,
    ACCEPT_RESOURCE,
    ACCEPT_TRANSIENT,
    AdmissionController,
    classify_accept_error,
)
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore, ServerStats
from repro.core.sse import SSEHub
from repro.servers.blocking import handle_client
from repro.testing.faults import faults


class MPServer:
    """Flash-MP: one worker process per concurrently served request."""

    architecture = "mp"

    def __init__(self, config: ServerConfig):
        self.config = config
        #: Per-worker configuration with the scaled-down caches the paper uses.
        self.worker_config = config.per_process_scaled(config.num_workers)
        self._listen_sock: Optional[socket.socket] = None
        self._processes: list = []
        self._context = multiprocessing.get_context(
            "fork" if hasattr(os, "fork") else "spawn"
        )
        self._stop_event = self._context.Event()
        self._drain_event = self._context.Event()
        self._stats_queue = self._context.Queue()
        #: Cross-process open-connection count backing admission control:
        #: workers increment under the Value's lock around each served
        #: connection, so every worker's (per-process) controller sees the
        #: fleet-wide total.
        self._open_count = self._context.Value("i", 0)
        self._collected_stats = ServerStats()
        self._closed = False

    # -- binding -----------------------------------------------------------------

    def bind(self) -> None:
        """Create the pre-fork listening socket.  Idempotent."""
        if self._listen_sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.config.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise RuntimeError("SO_REUSEPORT is not available on this platform")
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(self.config.listen_backlog)
        sock.settimeout(0.2)
        self._listen_sock = sock

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._listen_sock is None:
            raise RuntimeError("server is not bound yet")
        return self._listen_sock.getsockname()[:2]

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.address[1]

    # -- running ------------------------------------------------------------------

    def start(self) -> "MPServer":
        """Bind and fork the worker processes; returns immediately."""
        if self._processes:
            return self
        self.bind()
        for index in range(self.config.num_workers):
            process = self._context.Process(
                target=_mp_worker_main,
                args=(
                    self._listen_sock,
                    self.worker_config,
                    self._stop_event,
                    self._drain_event,
                    self._stats_queue,
                    self._open_count,
                ),
                name=f"mp-worker-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        return self

    # -- graceful drain -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the server is in drain mode (stopping gracefully)."""
        return self._drain_event.is_set()

    @property
    def open_connections(self) -> int:
        """Number of connections currently being served by workers."""
        with self._open_count.get_lock():
            return self._open_count.value

    def request_drain(self) -> None:
        """Enter drain mode (signal-safe): workers stop accepting, finish
        their in-flight exchanges with ``Connection: close``, and exit."""
        self._drain_event.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Drain and wait; returns True when every worker exited in time.

        After ``drain_timeout`` (or ``timeout``) expires, straggler worker
        processes are terminated — the drain deadline force-closes
        whatever connections they were still serving.
        """
        self.request_drain()
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        stragglers = [process for process in self._processes if process.is_alive()]
        for process in stragglers:
            self._collected_stats.drain_forced_closes += 1
            process.terminate()
            process.join(timeout=1.0)
        if stragglers:
            # Terminated workers never decremented the shared open-connection
            # counter for whatever they were serving; with every worker gone
            # the true count is zero, so reconcile it.
            with self._open_count.get_lock():
                self._open_count.value = 0
        self._drain_stats()
        self._processes = [p for p in self._processes if p.is_alive()]
        return not self._processes

    def stop(self, timeout: float = 5.0) -> None:
        """Stop every worker, consolidate statistics and release resources."""
        self._stop_event.set()
        for process in self._processes:
            process.join(timeout=timeout)
        self._drain_stats()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._processes = []
        self.close()

    def close(self) -> None:
        """Close the listening socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None

    @property
    def stats(self) -> ServerStats:
        """Consolidated statistics from workers that have exited.

        In the MP architecture, gathering request information across all
        connections requires inter-process communication (Section 4.2):
        workers push their counters into a queue when they stop, and this
        property reflects whatever has been consolidated so far.
        """
        self._drain_stats()
        return self._collected_stats

    def _drain_stats(self) -> None:
        while True:
            try:
                snapshot = self._stats_queue.get_nowait()
            except Exception:
                break
            worker_stats = ServerStats(**snapshot)
            self._collected_stats = self._collected_stats.merge(worker_stats)

    def __enter__(self) -> "MPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _mp_worker_main(
    listen_sock, worker_config, stop_event, drain_event, stats_queue, open_count
) -> None:
    """Entry point of an MP worker: accept and serve until shutdown.

    Each worker builds its own :class:`ContentStore` (private, smaller
    caches) and its own CGI runner, then loops accepting one connection at a
    time and handling it to completion with blocking I/O.  The admission
    controller is per-process (hysteresis state and the sentinel fd live in
    this worker's address space) but counts against the fleet-wide shared
    ``open_count``, so ``max_connections`` bounds the whole server.
    """
    store = ContentStore(worker_config)
    cgi_runner = CGIRunner(
        worker_config.cgi_programs,
        prefix=worker_config.cgi_prefix,
        stream_depth=worker_config.cgi_stream_depth,
    )
    # Per-process SSE hub: each worker owns its own subscriber set, matching
    # the MP architecture's replicated per-process state.  Events published
    # by one worker's ticker reach only that worker's subscribers.
    sse_hub: Optional[SSEHub] = None
    if worker_config.sse_path:
        sse_hub = SSEHub(
            queue_limit=worker_config.sse_queue_limit,
            policy=worker_config.sse_policy,
            on_drop=lambda: _count_sse_drop(store),
        )
        sse_hub.start_ticker(worker_config.sse_heartbeat)
    admission = AdmissionController(
        max_connections=worker_config.max_connections,
        resume_fraction=worker_config.admission_resume,
        retry_after=worker_config.retry_after,
    )
    backoff = ACCEPT_BACKOFF_INITIAL
    try:
        while not stop_event.is_set() and not drain_event.is_set():
            try:
                if faults.take("accept_emfile"):
                    raise OSError(errno.EMFILE, "injected fd exhaustion")
                client_sock, _address = listen_sock.accept()
            except socket.timeout:
                continue
            except OSError as exc:
                kind = classify_accept_error(exc)
                if kind == ACCEPT_TRANSIENT:
                    # The arrival aborted (or a signal landed): retry now.
                    continue
                if kind == ACCEPT_RESOURCE:
                    # Out of descriptors: retrying immediately cannot
                    # succeed and used to end the worker (or, with a bare
                    # ``continue``, busy-spin it).  Shed one backlogged
                    # arrival through the sentinel reserve and back off
                    # exponentially until something drains.
                    store.stats.fd_exhaustion_events += 1
                    admission.shed_one_pending(listen_sock)
                    stop_event.wait(backoff)
                    backoff = min(backoff * 2, ACCEPT_BACKOFF_MAX)
                    continue
                # Fatal: the listener is gone (shutdown race) — worker done.
                break
            backoff = ACCEPT_BACKOFF_INITIAL
            with open_count.get_lock():
                current = open_count.value
            if not admission.admit(current):
                store.stats.connections_accepted += 1
                store.stats.connections_shed += 1
                admission.shed(client_sock)
                continue
            with open_count.get_lock():
                open_count.value += 1
            try:
                handle_client(
                    client_sock,
                    store,
                    worker_config,
                    cgi_runner,
                    drain_check=drain_event.is_set,
                    sse_hub=sse_hub,
                )
            finally:
                with open_count.get_lock():
                    open_count.value -= 1
    finally:
        if sse_hub is not None:
            sse_hub.shutdown()
        try:
            stats_queue.put(store.stats.snapshot())
        except Exception:
            pass
        admission.close()
        cgi_runner.shutdown()
        store.close()


def _count_sse_drop(store: ContentStore) -> None:
    """Count a discarded SSE event for one worker's private stats."""
    with store.stats_lock():
        store.stats.sse_dropped_events += 1

"""Multi-Process (MP) build (paper Section 3.1).

The MP server assigns a *process* to each concurrently served request:
every worker performs the basic steps sequentially with blocking I/O, and
the operating system overlaps disk, CPU and network activity by switching
between workers.  Each process has a private address space, so no
synchronization is needed — but the application-level caches are replicated
per process, must therefore be configured smaller, suffer more compulsory
misses, and use memory less efficiently (Section 4.2); consolidating request
statistics requires inter-process communication (here a queue drained at
shutdown).

Workers accept from a listening socket created before the fork, exactly like
Apache's pre-forking model on UNIX.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
from typing import Optional

from repro.cgi.runner import CGIRunner
from repro.core.config import ServerConfig
from repro.core.pipeline import ContentStore, ServerStats
from repro.servers.blocking import handle_client


class MPServer:
    """Flash-MP: one worker process per concurrently served request."""

    architecture = "mp"

    def __init__(self, config: ServerConfig):
        self.config = config
        #: Per-worker configuration with the scaled-down caches the paper uses.
        self.worker_config = config.per_process_scaled(config.num_workers)
        self._listen_sock: Optional[socket.socket] = None
        self._processes: list = []
        self._context = multiprocessing.get_context(
            "fork" if hasattr(os, "fork") else "spawn"
        )
        self._stop_event = self._context.Event()
        self._stats_queue = self._context.Queue()
        self._collected_stats = ServerStats()
        self._closed = False

    # -- binding -----------------------------------------------------------------

    def bind(self) -> None:
        """Create the pre-fork listening socket.  Idempotent."""
        if self._listen_sock is not None:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(self.config.listen_backlog)
        sock.settimeout(0.2)
        self._listen_sock = sock

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) the server is bound to."""
        if self._listen_sock is None:
            raise RuntimeError("server is not bound yet")
        return self._listen_sock.getsockname()[:2]

    @property
    def port(self) -> int:
        """Bound TCP port."""
        return self.address[1]

    # -- running ------------------------------------------------------------------

    def start(self) -> "MPServer":
        """Bind and fork the worker processes; returns immediately."""
        if self._processes:
            return self
        self.bind()
        for index in range(self.config.num_workers):
            process = self._context.Process(
                target=_mp_worker_main,
                args=(
                    self._listen_sock,
                    self.worker_config,
                    self._stop_event,
                    self._stats_queue,
                ),
                name=f"mp-worker-{index}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop every worker, consolidate statistics and release resources."""
        self._stop_event.set()
        for process in self._processes:
            process.join(timeout=timeout)
        self._drain_stats()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._processes = []
        self.close()

    def close(self) -> None:
        """Close the listening socket.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None

    @property
    def stats(self) -> ServerStats:
        """Consolidated statistics from workers that have exited.

        In the MP architecture, gathering request information across all
        connections requires inter-process communication (Section 4.2):
        workers push their counters into a queue when they stop, and this
        property reflects whatever has been consolidated so far.
        """
        self._drain_stats()
        return self._collected_stats

    def _drain_stats(self) -> None:
        while True:
            try:
                snapshot = self._stats_queue.get_nowait()
            except Exception:
                break
            worker_stats = ServerStats(**snapshot)
            self._collected_stats = self._collected_stats.merge(worker_stats)

    def __enter__(self) -> "MPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _mp_worker_main(listen_sock, worker_config, stop_event, stats_queue) -> None:
    """Entry point of an MP worker: accept and serve until shutdown.

    Each worker builds its own :class:`ContentStore` (private, smaller
    caches) and its own CGI runner, then loops accepting one connection at a
    time and handling it to completion with blocking I/O.
    """
    store = ContentStore(worker_config)
    cgi_runner = CGIRunner(worker_config.cgi_programs, prefix=worker_config.cgi_prefix)
    try:
        while not stop_event.is_set():
            try:
                client_sock, _address = listen_sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handle_client(client_sock, store, worker_config, cgi_runner)
    finally:
        try:
            stats_queue.put(store.stats.snapshot())
        except Exception:
            pass
        cgi_runner.shutdown()
        store.close()

"""E4/E5 — real workload with varying data-set size (paper Figures 9 and 10).

The ECE access logs are truncated to produce working sets between 15 MB and
150 MB, and each truncated log is replayed against every server (64 clients
total).  Output bandwidth is reported rather than requests/second because
truncation changes the size distribution of requested content.

Expected shape (asserted by the benchmarks):

* every server's performance declines as the data set grows, with a marked
  drop once the working set no longer fits the server's effective cache;
* Flash tracks Flash-SPED on cached data sets and matches or exceeds the MP
  (and MT) servers on disk-bound data sets — the design goal of AMPED;
* Flash-SPED (and single-process-style Zeus) deteriorate drastically once
  disk activity starts;
* Zeus's drop appears later than the other servers' (small-document
  priority shrinks its effective working set);
* on Solaris, Flash-MT is comparable to Flash in both regimes;
* Apache trails everywhere.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.runner import run_simulation
from repro.workload.traces import ECE_TRACE, TraceSpec, TraceWorkload

MB = 1024 * 1024

#: Servers plotted in Figure 9 (FreeBSD; no MT).
FREEBSD_SERVERS = ("sped", "flash", "zeus", "mp", "apache")
#: Servers plotted in Figure 10 (Solaris; includes MT).
SOLARIS_SERVERS = ("sped", "flash", "zeus", "mt", "mp", "apache")

#: Data-set sizes (MB) on the figures' x axis.  The paper sweeps 15-150 MB in
#: 15 MB steps; the default here uses a coarser grid that still brackets the
#: cache cliff, to keep the benchmark runtime reasonable.
DEFAULT_DATASET_SIZES_MB = (30, 60, 90, 105, 120, 150)


class DatasetSweepExperiment:
    """Sweep the data-set size for every server on one platform."""

    def __init__(
        self,
        platform: str = "freebsd",
        *,
        servers: Optional[Sequence[str]] = None,
        dataset_sizes_mb: Iterable[int] = DEFAULT_DATASET_SIZES_MB,
        base_trace: TraceSpec = ECE_TRACE,
        num_clients: int = 64,
        duration: float = 4.0,
        warmup: float = 1.0,
    ):
        self.platform = platform.lower()
        if servers is None:
            servers = FREEBSD_SERVERS if self.platform == "freebsd" else SOLARIS_SERVERS
        self.servers = tuple(servers)
        self.dataset_sizes_mb = tuple(dataset_sizes_mb)
        self.base_trace = base_trace
        self.num_clients = num_clients
        self.duration = duration
        self.warmup = warmup

    @property
    def name(self) -> str:
        return (
            "fig09-dataset-sweep-freebsd"
            if self.platform == "freebsd"
            else "fig10-dataset-sweep-solaris"
        )

    def run(self) -> ExperimentResult:
        """Run every server at every data-set size."""
        result = ExperimentResult(self.name, x_label="data set (MB)")
        for size_mb in self.dataset_sizes_mb:
            spec = self.base_trace.scaled_to_dataset(size_mb * MB)
            workload = TraceWorkload(spec)
            for server in self.servers:
                sim = run_simulation(
                    server,
                    workload,
                    platform=self.platform,
                    num_clients=self.num_clients,
                    duration=self.duration,
                    warmup=self.warmup,
                    # Zeus runs in the two-process configuration advised by
                    # the vendor for the real-workload tests (Section 6.2).
                    server_kwargs={"num_processes": 2} if server == "zeus" else None,
                )
                result.add(
                    ResultRow(
                        experiment=self.name,
                        server=server,
                        x=float(size_mb),
                        bandwidth_mbps=sim.bandwidth_mbps,
                        request_rate=sim.request_rate,
                        details={
                            "platform": self.platform,
                            "hit_rate": sim.buffer_cache_hit_rate,
                            "disk_utilization": sim.disk_utilization,
                            "memory_footprint": sim.memory_footprint,
                        },
                    )
                )
        return result

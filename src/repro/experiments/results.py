"""Result containers shared by every experiment driver.

An experiment produces a list of :class:`ResultRow` (one per server per
x-axis point), wrapped in an :class:`ExperimentResult` that can render a
text table (what the benchmark harness prints, mirroring the figures' data)
and answer simple queries ("series for server X", "value at x", "ratio
between two servers") that the qualitative shape assertions are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class ResultRow:
    """One data point: a server at one x-axis position."""

    #: Which figure/experiment produced the row (e.g. ``"fig09"``).
    experiment: str
    #: Server label (``flash``, ``sped``, ``mp``, ``mt``, ``apache``, ``zeus``).
    server: str
    #: X-axis value (file size in KB, data-set size in MB, client count, ...).
    x: float
    #: Primary metric: output bandwidth in Mbit/s.
    bandwidth_mbps: float
    #: Secondary metric: completed requests per second.
    request_rate: float
    #: Free-form extra measurements (hit rates, utilizations, ...).
    details: dict = field(default_factory=dict)


class ExperimentResult:
    """The full set of data points produced by one experiment run."""

    def __init__(self, name: str, x_label: str, rows: Optional[Iterable[ResultRow]] = None):
        self.name = name
        self.x_label = x_label
        self.rows: list[ResultRow] = list(rows or [])

    def add(self, row: ResultRow) -> None:
        """Append one data point."""
        self.rows.append(row)

    # -- queries -----------------------------------------------------------------

    @property
    def servers(self) -> list[str]:
        """Server labels present, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            if row.server not in seen:
                seen.append(row.server)
        return seen

    @property
    def x_values(self) -> list[float]:
        """Sorted distinct x-axis values."""
        return sorted({row.x for row in self.rows})

    def series(self, server: str, metric: str = "bandwidth_mbps") -> list[tuple[float, float]]:
        """The (x, metric) series for one server, sorted by x."""
        points = [
            (row.x, getattr(row, metric))
            for row in self.rows
            if row.server == server
        ]
        return sorted(points)

    def value(self, server: str, x: float, metric: str = "bandwidth_mbps") -> float:
        """The metric for ``server`` at x-axis position ``x``."""
        for row in self.rows:
            if row.server == server and row.x == x:
                return getattr(row, metric)
        raise KeyError(f"no row for server={server!r} x={x!r} in {self.name}")

    def mean(self, server: str, metric: str = "bandwidth_mbps") -> float:
        """Mean of the metric across all x for one server."""
        values = [value for _, value in self.series(server, metric)]
        if not values:
            raise KeyError(f"no rows for server {server!r} in {self.name}")
        return sum(values) / len(values)

    def winner(self, x: float, metric: str = "bandwidth_mbps") -> str:
        """The server with the highest metric at ``x``."""
        best_server, best_value = None, float("-inf")
        for row in self.rows:
            if row.x == x and getattr(row, metric) > best_value:
                best_server, best_value = row.server, getattr(row, metric)
        if best_server is None:
            raise KeyError(f"no rows at x={x!r} in {self.name}")
        return best_server

    def ratio(self, numerator: str, denominator: str, x: float, metric: str = "bandwidth_mbps") -> float:
        """Metric ratio between two servers at ``x``."""
        denominator_value = self.value(denominator, x, metric)
        if denominator_value == 0:
            return float("inf")
        return self.value(numerator, x, metric) / denominator_value

    def drop_point(self, server: str, threshold: float = 0.85, metric: str = "bandwidth_mbps") -> Optional[float]:
        """The first x where the server falls below ``threshold`` of its peak.

        Used to locate the cache cliff in the data-set-size sweeps; returns
        ``None`` when the server never drops below the threshold.
        """
        series = self.series(server, metric)
        if not series:
            return None
        peak = max(value for _, value in series)
        for x, value in series:
            if value < threshold * peak:
                return x
        return None

    # -- rendering ------------------------------------------------------------------

    def to_table(self, metric: str = "bandwidth_mbps", float_format: str = "{:8.1f}") -> str:
        """Render the result as a text table (servers as columns)."""
        servers = self.servers
        lines = [f"# {self.name}  ({metric})"]
        header = f"{self.x_label:>12} " + " ".join(f"{server:>10}" for server in servers)
        lines.append(header)
        for x in self.x_values:
            cells = []
            for server in servers:
                try:
                    cells.append(float_format.format(self.value(server, x, metric)).rjust(10))
                except KeyError:
                    cells.append(" " * 10)
            lines.append(f"{x:>12g} " + " ".join(cells))
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """All rows as flat dictionaries (for JSON/CSV export)."""
        return [
            {
                "experiment": row.experiment,
                "server": row.server,
                "x": row.x,
                "bandwidth_mbps": row.bandwidth_mbps,
                "request_rate": row.request_rate,
                **row.details,
            }
            for row in self.rows
        ]

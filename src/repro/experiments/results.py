"""Result containers and the BENCH json schema shared by every emitter.

An experiment produces a list of :class:`ResultRow` (one per server per
x-axis point), wrapped in an :class:`ExperimentResult` that can render a
text table (what the benchmark harness prints, mirroring the figures' data)
and answer simple queries ("series for server X", "value at x", "ratio
between two servers") that the qualitative shape assertions are built from.

The same container is the unit of machine-readable output: every
experiment and benchmark emits a versioned ``BENCH_<name>.json`` payload
(:meth:`ExperimentResult.to_payload` / :meth:`~ExperimentResult.write_json`)
next to its ``.txt`` table, so the perf trajectory across PRs accumulates
in a form CI can validate and archive.  :func:`validate_bench_payload` is
the schema: key sets are **exact** — a missing or extra key is an error,
not a warning — because silent schema drift is how a perf trajectory rots.
"""

from __future__ import annotations

import json
import numbers
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "ResultRow",
    "ExperimentResult",
    "validate_bench_payload",
    "bench_json_name",
    "SCHEMA_VERSION",
    "TOP_KEYS",
    "ROW_KEYS",
    "OPTIONAL_ROW_KEYS",
    "LATENCY_KEYS",
]

#: Version of the BENCH json layout.  Bump when a key is added, removed or
#: changes meaning; consumers compare it exactly.
SCHEMA_VERSION = 1

#: Exact key set of the top-level payload object.
TOP_KEYS = frozenset({"schema_version", "name", "x_label", "rows"})

#: Exact key set of every row object (before the optional latency keys).
ROW_KEYS = frozenset(
    {"experiment", "server", "x", "bandwidth_mbps", "request_rate", "details"}
)

#: Keys a row may carry in addition to :data:`ROW_KEYS`.  ``latency_ms`` is
#: :meth:`repro.client.latency.LatencyHistogram.summary_ms`; ``latency_cdf``
#: is :meth:`~repro.client.latency.LatencyHistogram.cdf_ms`.
OPTIONAL_ROW_KEYS = frozenset({"latency_ms", "latency_cdf"})

#: Exact key set of a ``latency_ms`` summary object.
LATENCY_KEYS = frozenset(
    {"count", "mean_ms", "min_ms", "max_ms", "p50_ms", "p90_ms", "p99_ms", "p999_ms"}
)


def bench_json_name(name: str) -> str:
    """The canonical file name for a result's BENCH json (``BENCH_<name>.json``)."""
    return f"BENCH_{name}.json"


def _is_scalar(value: object) -> bool:
    return value is None or isinstance(value, (str, bool, numbers.Real))


def _fail(message: str) -> None:
    raise ValueError(f"BENCH payload invalid: {message}")


def _check_keys(obj: dict, required: frozenset, optional: frozenset, where: str) -> None:
    keys = set(obj)
    missing = required - keys
    if missing:
        _fail(f"{where} missing keys {sorted(missing)}")
    extra = keys - required - optional
    if extra:
        _fail(f"{where} has extra keys {sorted(extra)}")


def validate_bench_payload(payload: object) -> dict:
    """Validate a BENCH json payload against the schema; return it.

    Strict on both sides: missing keys and extra keys are errors, as are
    non-scalar ``details`` values, a wrong ``schema_version``, malformed
    ``latency_ms`` summaries, and non-monotone ``latency_cdf`` point lists.
    Raises :class:`ValueError` with a message naming the offending field.
    """
    if not isinstance(payload, dict):
        _fail(f"top level must be an object, got {type(payload).__name__}")
    _check_keys(payload, TOP_KEYS, frozenset(), "top level")
    if payload["schema_version"] != SCHEMA_VERSION:
        _fail(
            f"schema_version is {payload['schema_version']!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    if not isinstance(payload["name"], str) or not payload["name"]:
        _fail("name must be a non-empty string")
    if not isinstance(payload["x_label"], str):
        _fail("x_label must be a string")
    rows = payload["rows"]
    if not isinstance(rows, list):
        _fail("rows must be a list")
    for position, row in enumerate(rows):
        where = f"rows[{position}]"
        if not isinstance(row, dict):
            _fail(f"{where} must be an object")
        _check_keys(row, ROW_KEYS, OPTIONAL_ROW_KEYS, where)
        for key in ("experiment", "server"):
            if not isinstance(row[key], str) or not row[key]:
                _fail(f"{where}.{key} must be a non-empty string")
        for key in ("x", "bandwidth_mbps", "request_rate"):
            if isinstance(row[key], bool) or not isinstance(row[key], numbers.Real):
                _fail(f"{where}.{key} must be a number")
        details = row["details"]
        if not isinstance(details, dict):
            _fail(f"{where}.details must be an object")
        for key, value in details.items():
            if not isinstance(key, str):
                _fail(f"{where}.details keys must be strings")
            if not _is_scalar(value):
                _fail(
                    f"{where}.details[{key!r}] must be a scalar, "
                    f"got {type(value).__name__}"
                )
        if "latency_ms" in row:
            latency = row["latency_ms"]
            if not isinstance(latency, dict):
                _fail(f"{where}.latency_ms must be an object")
            _check_keys(latency, LATENCY_KEYS, frozenset(), f"{where}.latency_ms")
            for key, value in latency.items():
                if isinstance(value, bool) or not isinstance(value, numbers.Real):
                    _fail(f"{where}.latency_ms.{key} must be a number")
        if "latency_cdf" in row:
            cdf = row["latency_cdf"]
            if not isinstance(cdf, list):
                _fail(f"{where}.latency_cdf must be a list")
            previous = 0.0
            for point_index, point in enumerate(cdf):
                if (
                    not isinstance(point, list)
                    or len(point) != 2
                    or any(
                        isinstance(v, bool) or not isinstance(v, numbers.Real)
                        for v in point
                    )
                ):
                    _fail(
                        f"{where}.latency_cdf[{point_index}] must be a "
                        "[latency_ms, fraction] number pair"
                    )
                if not previous <= point[1] <= 1.0:
                    _fail(f"{where}.latency_cdf fractions must be nondecreasing in [0, 1]")
                previous = point[1]
            if cdf and cdf[-1][1] != 1.0:
                _fail(f"{where}.latency_cdf must end at fraction 1.0")
    return payload


@dataclass(frozen=True)
class ResultRow:
    """One data point: a server at one x-axis position."""

    #: Which figure/experiment produced the row (e.g. ``"fig09"``).
    experiment: str
    #: Server label (``flash``, ``sped``, ``mp``, ``mt``, ``apache``, ``zeus``).
    server: str
    #: X-axis value (file size in KB, data-set size in MB, client count, ...).
    x: float
    #: Primary metric: output bandwidth in Mbit/s.
    bandwidth_mbps: float
    #: Secondary metric: completed requests per second.
    request_rate: float
    #: Free-form extra measurements (hit rates, utilizations, ...); values
    #: must be scalars so the row serializes under the BENCH schema.
    details: dict = field(default_factory=dict)
    #: Optional latency summary (``LatencyHistogram.summary_ms()`` shape).
    latency_ms: Optional[dict] = None
    #: Optional latency CDF (``LatencyHistogram.cdf_ms()`` shape).
    latency_cdf: Optional[list] = None

    def to_payload_row(self) -> dict:
        """This row as a BENCH-schema row object."""
        row: dict = {
            "experiment": self.experiment,
            "server": self.server,
            "x": self.x,
            "bandwidth_mbps": self.bandwidth_mbps,
            "request_rate": self.request_rate,
            "details": dict(self.details),
        }
        if self.latency_ms is not None:
            row["latency_ms"] = dict(self.latency_ms)
        if self.latency_cdf is not None:
            row["latency_cdf"] = [list(point) for point in self.latency_cdf]
        return row


class ExperimentResult:
    """The full set of data points produced by one experiment run."""

    def __init__(self, name: str, x_label: str, rows: Optional[Iterable[ResultRow]] = None):
        self.name = name
        self.x_label = x_label
        self.rows: list[ResultRow] = list(rows or [])

    def add(self, row: ResultRow) -> None:
        """Append one data point."""
        self.rows.append(row)

    # -- queries -----------------------------------------------------------------

    @property
    def servers(self) -> list[str]:
        """Server labels present, in first-appearance order."""
        seen: list[str] = []
        for row in self.rows:
            if row.server not in seen:
                seen.append(row.server)
        return seen

    @property
    def x_values(self) -> list[float]:
        """Sorted distinct x-axis values."""
        return sorted({row.x for row in self.rows})

    def series(self, server: str, metric: str = "bandwidth_mbps") -> list[tuple[float, float]]:
        """The (x, metric) series for one server, sorted by x."""
        points = [
            (row.x, getattr(row, metric))
            for row in self.rows
            if row.server == server
        ]
        return sorted(points)

    def value(self, server: str, x: float, metric: str = "bandwidth_mbps") -> float:
        """The metric for ``server`` at x-axis position ``x``."""
        for row in self.rows:
            if row.server == server and row.x == x:
                return getattr(row, metric)
        raise KeyError(f"no row for server={server!r} x={x!r} in {self.name}")

    def mean(self, server: str, metric: str = "bandwidth_mbps") -> float:
        """Mean of the metric across all x for one server."""
        values = [value for _, value in self.series(server, metric)]
        if not values:
            raise KeyError(f"no rows for server {server!r} in {self.name}")
        return sum(values) / len(values)

    def winner(self, x: float, metric: str = "bandwidth_mbps") -> str:
        """The server with the highest metric at ``x``."""
        best_server, best_value = None, float("-inf")
        for row in self.rows:
            if row.x == x and getattr(row, metric) > best_value:
                best_server, best_value = row.server, getattr(row, metric)
        if best_server is None:
            raise KeyError(f"no rows at x={x!r} in {self.name}")
        return best_server

    def ratio(self, numerator: str, denominator: str, x: float, metric: str = "bandwidth_mbps") -> float:
        """Metric ratio between two servers at ``x``."""
        denominator_value = self.value(denominator, x, metric)
        if denominator_value == 0:
            return float("inf")
        return self.value(numerator, x, metric) / denominator_value

    def drop_point(self, server: str, threshold: float = 0.85, metric: str = "bandwidth_mbps") -> Optional[float]:
        """The first x where the server falls below ``threshold`` of its peak.

        Used to locate the cache cliff in the data-set-size sweeps; returns
        ``None`` when the server never drops below the threshold.
        """
        series = self.series(server, metric)
        if not series:
            return None
        peak = max(value for _, value in series)
        for x, value in series:
            if value < threshold * peak:
                return x
        return None

    # -- rendering ------------------------------------------------------------------

    def to_table(self, metric: str = "bandwidth_mbps", float_format: str = "{:8.1f}") -> str:
        """Render the result as a text table (servers as columns)."""
        servers = self.servers
        lines = [f"# {self.name}  ({metric})"]
        header = f"{self.x_label:>12} " + " ".join(f"{server:>10}" for server in servers)
        lines.append(header)
        for x in self.x_values:
            cells = []
            for server in servers:
                try:
                    cells.append(float_format.format(self.value(server, x, metric)).rjust(10))
                except KeyError:
                    cells.append(" " * 10)
            lines.append(f"{x:>12g} " + " ".join(cells))
        return "\n".join(lines)

    def to_dicts(self) -> list[dict]:
        """All rows as flat dictionaries (for JSON/CSV export)."""
        return [
            {
                "experiment": row.experiment,
                "server": row.server,
                "x": row.x,
                "bandwidth_mbps": row.bandwidth_mbps,
                "request_rate": row.request_rate,
                **row.details,
            }
            for row in self.rows
        ]

    # -- BENCH json ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """This result as a schema-valid BENCH json payload.

        Validates before returning, so an emitter cannot produce a payload
        the CI schema check would reject.
        """
        payload = {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "x_label": self.x_label,
            "rows": [row.to_payload_row() for row in self.rows],
        }
        return validate_bench_payload(payload)

    def write_json(self, directory: str) -> str:
        """Write ``BENCH_<name>.json`` into ``directory``; return the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, bench_json_name(self.name))
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentResult":
        """Rebuild an :class:`ExperimentResult` from a validated payload."""
        validate_bench_payload(payload)
        result = cls(payload["name"], payload["x_label"])
        for row in payload["rows"]:
            result.add(
                ResultRow(
                    experiment=row["experiment"],
                    server=row["server"],
                    x=row["x"],
                    bandwidth_mbps=row["bandwidth_mbps"],
                    request_rate=row["request_rate"],
                    details=dict(row["details"]),
                    latency_ms=row.get("latency_ms"),
                    latency_cdf=row.get("latency_cdf"),
                )
            )
        return result

"""E6 — Flash performance breakdown (paper Figure 11).

The configuration is the FreeBSD single-file test with a cached document;
Flash is run with every combination of its three main caching optimizations
(pathname translation caching, mapped-file caching, response-header
caching), eight variants in all.  Expected shape:

* every optimization contributes measurably;
* pathname translation caching provides the largest single benefit;
* with no caching at all, small-file connection rate roughly halves;
* the impact is strongest for small documents (each cache avoids a
  per-request cost, which dominates when transfers are small).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.appcache import AppCacheConfig
from repro.sim.runner import run_simulation
from repro.workload.synthetic import SingleFileWorkload

KB = 1024

#: The eight cache combinations, labelled as in the figure's legend.
#: Each entry is (label, pathname, mmap, response-header).
CACHE_COMBINATIONS: Sequence[tuple[str, bool, bool, bool]] = (
    ("all (Flash)", True, True, True),
    ("path & mmap", True, True, False),
    ("path & resp", True, False, True),
    ("path only", True, False, False),
    ("mmap & resp", False, True, True),
    ("mmap only", False, True, False),
    ("resp only", False, False, True),
    ("no caching", False, False, False),
)

#: File sizes (KB) on the figure's x axis.
DEFAULT_FILE_SIZES_KB = (1, 5, 10, 15, 20)


class OptimizationBreakdownExperiment:
    """Run Flash with all 2^3 combinations of its caching optimizations."""

    def __init__(
        self,
        platform: str = "freebsd",
        *,
        file_sizes_kb: Iterable[int] = DEFAULT_FILE_SIZES_KB,
        num_clients: int = 64,
        duration: float = 2.0,
        warmup: float = 0.5,
    ):
        self.platform = platform.lower()
        self.file_sizes_kb = tuple(file_sizes_kb)
        self.num_clients = num_clients
        self.duration = duration
        self.warmup = warmup
        self.name = "fig11-optimization-breakdown"

    def run(self) -> ExperimentResult:
        """Run every cache combination at every file size.

        Rows use the combination label as the ``server`` field so the result
        table reads exactly like the figure's legend.
        """
        result = ExperimentResult(self.name, x_label="file size (KB)")
        for size_kb in self.file_sizes_kb:
            workload = SingleFileWorkload(size_kb * KB)
            for label, pathname, mmap_cache, header in CACHE_COMBINATIONS:
                caches = AppCacheConfig(
                    enable_pathname=pathname,
                    enable_mmap=mmap_cache,
                    enable_header=header,
                )
                sim = run_simulation(
                    "flash",
                    workload,
                    platform=self.platform,
                    num_clients=self.num_clients,
                    duration=self.duration,
                    warmup=self.warmup,
                    app_caches=caches,
                )
                result.add(
                    ResultRow(
                        experiment=self.name,
                        server=label,
                        x=float(size_kb),
                        bandwidth_mbps=sim.bandwidth_mbps,
                        request_rate=sim.request_rate,
                        details={
                            "pathname": pathname,
                            "mmap": mmap_cache,
                            "header": header,
                        },
                    )
                )
        return result

"""E1/E2 — the single-file test (paper Figures 6 and 7).

"A set of clients repeatedly request the same file, where the file size is
varied in each test.  The simplicity of the workload in this test allows the
servers to perform at their highest capacity."  The figures plot total
output bandwidth against file size (0–200 KB) and, separately, connection
rate for small files (0–20 KB).

Expected shape (asserted by the benchmarks):

* architecture has little impact on this trivial cached workload — the
  Flash variants and Zeus are within a band, Apache well below;
* Flash-SPED slightly outperforms Flash (no residency test);
* Zeus on FreeBSD dips for files of roughly 100 KB and above because its
  response headers become misaligned (Section 5.5);
* everything is substantially faster on FreeBSD than on Solaris;
* Flash-MT is absent on FreeBSD (no kernel threads in FreeBSD 2.2.6).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.runner import run_simulation
from repro.workload.synthetic import SingleFileWorkload

KB = 1024

#: Servers plotted in Figure 6 (Solaris).
SOLARIS_SERVERS = ("sped", "flash", "zeus", "mt", "mp", "apache")
#: Servers plotted in Figure 7 (FreeBSD): no MT — FreeBSD 2.2.6 lacks kernel threads.
FREEBSD_SERVERS = ("sped", "flash", "zeus", "mp", "apache")

#: File sizes for the bandwidth plot (left-hand graphs), in KB.
BANDWIDTH_FILE_SIZES_KB = (5, 20, 50, 90, 128, 175, 200)
#: File sizes for the connection-rate plot (right-hand graphs), in KB.
RATE_FILE_SIZES_KB = (1, 5, 10, 15, 20)


class SingleFileExperiment:
    """Sweep file size for every server on one platform (Figure 6 or 7)."""

    def __init__(
        self,
        platform: str = "freebsd",
        *,
        servers: Optional[Sequence[str]] = None,
        file_sizes_kb: Iterable[int] = BANDWIDTH_FILE_SIZES_KB,
        num_clients: int = 64,
        duration: float = 2.0,
        warmup: float = 0.5,
    ):
        self.platform = platform.lower()
        if servers is None:
            servers = FREEBSD_SERVERS if self.platform == "freebsd" else SOLARIS_SERVERS
        self.servers = tuple(servers)
        self.file_sizes_kb = tuple(file_sizes_kb)
        self.num_clients = num_clients
        self.duration = duration
        self.warmup = warmup

    @property
    def name(self) -> str:
        return "fig07-single-file-freebsd" if self.platform == "freebsd" else "fig06-single-file-solaris"

    def run(self) -> ExperimentResult:
        """Run the sweep and return one row per (server, file size)."""
        result = ExperimentResult(self.name, x_label="file size (KB)")
        for size_kb in self.file_sizes_kb:
            workload = SingleFileWorkload(size_kb * KB)
            for server in self.servers:
                sim = run_simulation(
                    server,
                    workload,
                    platform=self.platform,
                    num_clients=self.num_clients,
                    duration=self.duration,
                    warmup=self.warmup,
                )
                result.add(
                    ResultRow(
                        experiment=self.name,
                        server=server,
                        x=float(size_kb),
                        bandwidth_mbps=sim.bandwidth_mbps,
                        request_rate=sim.request_rate,
                        details={
                            "platform": self.platform,
                            "nic_utilization": sim.nic_utilization,
                        },
                    )
                )
        return result

    def run_connection_rate(self) -> ExperimentResult:
        """The right-hand graphs: connection rate for small files (0-20 KB)."""
        sweep = SingleFileExperiment(
            self.platform,
            servers=self.servers,
            file_sizes_kb=RATE_FILE_SIZES_KB,
            num_clients=self.num_clients,
            duration=self.duration,
            warmup=self.warmup,
        )
        return sweep.run()

"""E3 — trace-based experiment on the Rice server logs (paper Figure 8).

Replaying the CS and Owlnet traces on Solaris, the figure shows a bar per
server (Apache, MP, MT, SPED, Flash) per trace.  Expected shape:

* Flash achieves the highest throughput on both workloads;
* Apache achieves the lowest;
* Flash-SPED's *relative* performance (against Flash) is much better on the
  cache-friendly Owlnet trace than on the more disk-intensive CS trace;
* MP's relative performance is better on the CS trace than on Owlnet.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.runner import run_simulation
from repro.workload.traces import CS_TRACE, OWLNET_TRACE, TraceSpec, TraceWorkload

#: Servers plotted in Figure 8.
DEFAULT_SERVERS = ("apache", "mp", "mt", "sped", "flash")


class TraceReplayExperiment:
    """Replay the CS-like and Owlnet-like traces against every server."""

    def __init__(
        self,
        platform: str = "solaris",
        *,
        servers: Sequence[str] = DEFAULT_SERVERS,
        traces: Optional[dict[str, TraceSpec]] = None,
        num_clients: int = 64,
        duration: float = 5.0,
        warmup: float = 1.5,
    ):
        self.platform = platform.lower()
        self.servers = tuple(servers)
        self.traces = traces or {"cs": CS_TRACE, "owlnet": OWLNET_TRACE}
        self.num_clients = num_clients
        self.duration = duration
        self.warmup = warmup
        self.name = "fig08-rice-traces"

    def run(self) -> ExperimentResult:
        """Run every server on every trace.

        The x axis is the trace index (0 = CS, 1 = Owlnet); the trace name is
        recorded in each row's details so assertions can select by name.
        """
        result = ExperimentResult(self.name, x_label="trace")
        for index, (trace_name, spec) in enumerate(self.traces.items()):
            workload = TraceWorkload(spec)
            for server in self.servers:
                sim = run_simulation(
                    server,
                    workload,
                    platform=self.platform,
                    num_clients=self.num_clients,
                    duration=self.duration,
                    warmup=self.warmup,
                    server_kwargs={"num_processes": 2} if server == "zeus" else None,
                )
                result.add(
                    ResultRow(
                        experiment=self.name,
                        server=server,
                        x=float(index),
                        bandwidth_mbps=sim.bandwidth_mbps,
                        request_rate=sim.request_rate,
                        details={
                            "trace": trace_name,
                            "platform": self.platform,
                            "hit_rate": sim.buffer_cache_hit_rate,
                            "dataset_mb": spec.dataset_bytes / (1024 * 1024),
                        },
                    )
                )
        return result

    def bandwidth(self, result: ExperimentResult, server: str, trace: str) -> float:
        """Convenience: the bandwidth of ``server`` on ``trace`` by name."""
        for row in result.rows:
            if row.server == server and row.details.get("trace") == trace:
                return row.bandwidth_mbps
        raise KeyError(f"no row for server={server!r} trace={trace!r}")

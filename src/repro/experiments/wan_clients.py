"""E7 — performance under WAN conditions (paper Figure 12).

LAN benchmarking understates the number of concurrent connections a real
server handles, because WAN clients are slow and connections long lived.
The paper emulates this with persistent connections on the ECE workload
(90 MB data set) and sweeps the number of simultaneous clients from tens to
500 on Solaris.  Expected shape:

* SPED, AMPED and MT show an initial rise (aggregation effects amortize the
  per-wakeup event-notification overhead) and then stay roughly flat;
* MT declines gradually beyond a couple of hundred connections (per-thread
  switching and memory overhead);
* MP declines significantly as connections grow, because each connection
  occupies a whole process (memory pressure shrinks the file cache and
  per-process overheads mount).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.runner import run_simulation
from repro.workload.traces import ECE_TRACE, TraceSpec, TraceWorkload

MB = 1024 * 1024

#: Servers plotted in Figure 12.
DEFAULT_SERVERS = ("sped", "flash", "mt", "mp")

#: Client counts on the figure's x axis.
DEFAULT_CLIENT_COUNTS = (16, 32, 64, 128, 256, 500)


class WANClientsExperiment:
    """Sweep the number of concurrent (persistent) client connections."""

    def __init__(
        self,
        platform: str = "solaris",
        *,
        servers: Sequence[str] = DEFAULT_SERVERS,
        client_counts: Iterable[int] = DEFAULT_CLIENT_COUNTS,
        dataset_mb: int = 90,
        base_trace: TraceSpec = ECE_TRACE,
        client_link_bits: Optional[float] = None,
        duration: float = 4.0,
        warmup: float = 1.0,
    ):
        self.platform = platform.lower()
        self.servers = tuple(servers)
        self.client_counts = tuple(client_counts)
        self.dataset_mb = dataset_mb
        self.base_trace = base_trace
        self.client_link_bits = client_link_bits
        self.duration = duration
        self.warmup = warmup
        self.name = "fig12-wan-clients"

    def run(self) -> ExperimentResult:
        """Run every server at every concurrency level."""
        result = ExperimentResult(self.name, x_label="concurrent clients")
        spec = self.base_trace.scaled_to_dataset(self.dataset_mb * MB)
        workload = TraceWorkload(spec)
        for num_clients in self.client_counts:
            for server in self.servers:
                sim = run_simulation(
                    server,
                    workload,
                    platform=self.platform,
                    num_clients=num_clients,
                    duration=self.duration,
                    warmup=self.warmup,
                    persistent_connections=True,
                    client_link_bits=self.client_link_bits,
                )
                result.add(
                    ResultRow(
                        experiment=self.name,
                        server=server,
                        x=float(num_clients),
                        bandwidth_mbps=sim.bandwidth_mbps,
                        request_rate=sim.request_rate,
                        details={
                            "platform": self.platform,
                            "hit_rate": sim.buffer_cache_hit_rate,
                            "memory_footprint": sim.memory_footprint,
                        },
                    )
                )
        return result

"""E7 — performance under WAN conditions (paper Figure 12).

LAN benchmarking understates the number of concurrent connections a real
server handles, because WAN clients are slow and connections long lived.
The paper emulates this with persistent connections on the ECE workload
(90 MB data set) and sweeps the number of simultaneous clients from tens to
500 on Solaris.  Expected shape:

* SPED, AMPED and MT show an initial rise (aggregation effects amortize the
  per-wakeup event-notification overhead) and then stay roughly flat;
* MT declines gradually beyond a couple of hundred connections (per-thread
  switching and memory overhead);
* MP declines significantly as connections grow, because each connection
  occupies a whole process (memory pressure shrinks the file cache and
  per-process overheads mount).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.results import ExperimentResult, ResultRow
from repro.sim.runner import run_simulation
from repro.workload.traces import ECE_TRACE, TraceSpec, TraceWorkload

MB = 1024 * 1024

#: Servers plotted in Figure 12.
DEFAULT_SERVERS = ("sped", "flash", "mt", "mp")

#: Client counts on the figure's x axis.
DEFAULT_CLIENT_COUNTS = (16, 32, 64, 128, 256, 500)

#: Event-notification mechanisms the extended sweep can cross with the
#: architectures (see ``io_backends`` below).
EVENT_BACKENDS = ("select", "poll", "epoll")


class WANClientsExperiment:
    """Sweep the number of concurrent (persistent) client connections.

    With the default ``io_backends=None`` the experiment reproduces the
    paper's Figure 12 exactly as before (every server on the simulator's
    default O(ready) event mechanism).  Passing a sequence of backend
    names — e.g. ``EVENT_BACKENDS`` — crosses every architecture with
    every mechanism, which reproduces the *event-mechanism cost curve*:
    under WAN conditions most connections are idle at any instant, so
    stateless mechanisms (``select``/``poll``) re-scan an ever larger
    interest set per wakeup while ``epoll`` stays flat.  Rows from the
    sweep are labelled ``server@backend`` and carry ``io_backend`` in
    their details.
    """

    def __init__(
        self,
        platform: str = "solaris",
        *,
        servers: Sequence[str] = DEFAULT_SERVERS,
        client_counts: Iterable[int] = DEFAULT_CLIENT_COUNTS,
        dataset_mb: int = 90,
        base_trace: TraceSpec = ECE_TRACE,
        client_link_bits: Optional[float] = None,
        duration: float = 4.0,
        warmup: float = 1.0,
        io_backends: Optional[Sequence[str]] = None,
    ):
        self.platform = platform.lower()
        self.servers = tuple(servers)
        self.client_counts = tuple(client_counts)
        self.dataset_mb = dataset_mb
        self.base_trace = base_trace
        self.client_link_bits = client_link_bits
        self.duration = duration
        self.warmup = warmup
        self.io_backends = tuple(io_backends) if io_backends else None
        self.name = "fig12-wan-clients"

    @staticmethod
    def series_label(server: str, backend: Optional[str]) -> str:
        """Row label for one (architecture, event mechanism) combination."""
        return server if backend is None else f"{server}@{backend}"

    def run(self) -> ExperimentResult:
        """Run every server (x every backend) at every concurrency level."""
        result = ExperimentResult(self.name, x_label="concurrent clients")
        spec = self.base_trace.scaled_to_dataset(self.dataset_mb * MB)
        backends: Sequence[Optional[str]] = self.io_backends or (None,)
        for num_clients in self.client_counts:
            for server in self.servers:
                for backend in backends:
                    # A fresh (identically seeded) workload per run: the
                    # per-client Zipf samplers are stateful, so sharing one
                    # workload would hand every run a different request
                    # stream and blur the backend/architecture comparison.
                    sim = run_simulation(
                        server,
                        TraceWorkload(spec),
                        platform=self.platform,
                        num_clients=num_clients,
                        duration=self.duration,
                        warmup=self.warmup,
                        persistent_connections=True,
                        client_link_bits=self.client_link_bits,
                        **({"io_backend": backend} if backend else {}),
                    )
                    result.add(
                        ResultRow(
                            experiment=self.name,
                            server=self.series_label(server, backend),
                            x=float(num_clients),
                            bandwidth_mbps=sim.bandwidth_mbps,
                            request_rate=sim.request_rate,
                            details={
                                "platform": self.platform,
                                "io_backend": sim.extra.get("io_backend", "epoll"),
                                "hit_rate": sim.buffer_cache_hit_rate,
                                "memory_footprint": sim.memory_footprint,
                            },
                        )
                    )
        return result

"""Experiment drivers: one per figure of the paper's evaluation (Section 6).

Each experiment class knows its workload, its parameter sweep and which
servers the corresponding figure plots; running it produces an
:class:`repro.experiments.results.ExperimentResult` whose rows are the
figure's data points and whose helper methods answer the qualitative
questions the paper draws from the figure (who wins, where the cliff falls).
The benchmark suite under ``benchmarks/`` simply runs these drivers and
asserts those qualitative shapes.

==========  ============================================  ==========================
Experiment  Paper figure                                   Driver
==========  ============================================  ==========================
E1          Fig. 6  single-file test, Solaris              :class:`SingleFileExperiment`
E2          Fig. 7  single-file test, FreeBSD              :class:`SingleFileExperiment`
E3          Fig. 8  CS / Owlnet traces, Solaris            :class:`TraceReplayExperiment`
E4          Fig. 9  data-set-size sweep, FreeBSD           :class:`DatasetSweepExperiment`
E5          Fig. 10 data-set-size sweep, Solaris           :class:`DatasetSweepExperiment`
E6          Fig. 11 Flash optimization breakdown           :class:`OptimizationBreakdownExperiment`
E7          Fig. 12 concurrent-client (WAN) sweep          :class:`WANClientsExperiment`
E8          —       functional (real-socket) comparison    :class:`FunctionalComparisonExperiment`
==========  ============================================  ==========================
"""

from repro.experiments.results import (
    SCHEMA_VERSION,
    ExperimentResult,
    ResultRow,
    bench_json_name,
    validate_bench_payload,
)
from repro.experiments.single_file import SingleFileExperiment
from repro.experiments.trace_replay import TraceReplayExperiment
from repro.experiments.dataset_sweep import DatasetSweepExperiment
from repro.experiments.optimization_breakdown import OptimizationBreakdownExperiment
from repro.experiments.wan_clients import WANClientsExperiment
from repro.experiments.functional import FunctionalComparisonExperiment

__all__ = [
    "ExperimentResult",
    "ResultRow",
    "SCHEMA_VERSION",
    "bench_json_name",
    "validate_bench_payload",
    "SingleFileExperiment",
    "TraceReplayExperiment",
    "DatasetSweepExperiment",
    "OptimizationBreakdownExperiment",
    "WANClientsExperiment",
    "FunctionalComparisonExperiment",
]

"""E8 — functional comparison of the real socket servers.

This experiment is not one of the paper's figures: it exercises the
*functional* layer (the real AMPED/SPED/MP/MT servers over TCP sockets with
the event-driven load generator) on a small cached workload, confirming that
all four architectures built from the shared code base actually serve the
same content correctly and at broadly comparable rates on a trivially
cached workload — the functional analogue of the paper's observation that
architecture matters little when everything is in memory.

Absolute throughput here reflects the host Python interpreter, not the
paper's hardware; only correctness and rough comparability are asserted.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.client.loadgen import LoadGenerator, LoadResult
from repro.core.config import ServerConfig
from repro.experiments.results import ExperimentResult, ResultRow
from repro.servers import create_server
from repro.workload.dataset import materialize_catalog
from repro.workload.synthetic import SingleFileWorkload

DEFAULT_ARCHITECTURES = ("amped", "sped", "mt", "mp")


@dataclass
class FunctionalRunSettings:
    """Settings for one functional load-generation run."""

    file_size: int = 8 * 1024
    num_clients: int = 8
    duration: float = 1.0
    num_workers: int = 8
    num_helpers: int = 2


class FunctionalComparisonExperiment:
    """Drive the real servers with the real load generator."""

    def __init__(
        self,
        architectures: Sequence[str] = DEFAULT_ARCHITECTURES,
        settings: Optional[FunctionalRunSettings] = None,
        document_root: Optional[str] = None,
    ):
        self.architectures = tuple(architectures)
        self.settings = settings or FunctionalRunSettings()
        self._document_root = document_root
        self.name = "functional-comparison"

    def _prepare_root(self) -> tuple[str, str]:
        """Materialize the single-file workload on disk; return (root, path)."""
        root = self._document_root or tempfile.mkdtemp(prefix="flash-functional-")
        workload = SingleFileWorkload(self.settings.file_size)
        paths = materialize_catalog(root, [(workload.file_id, workload.file_size)])
        return root, paths[0]

    def run_one(self, architecture: str, root: str, path: str) -> LoadResult:
        """Run the load generator against one architecture."""
        config = ServerConfig(
            document_root=root,
            port=0,
            num_workers=self.settings.num_workers,
            num_helpers=self.settings.num_helpers,
        )
        server = create_server(architecture, config)
        server.start()
        try:
            generator = LoadGenerator(
                server.address,
                path,
                num_clients=self.settings.num_clients,
                duration=self.settings.duration,
            )
            return generator.run()
        finally:
            server.stop()

    def run(self) -> ExperimentResult:
        """Run every architecture and collect a result row each."""
        root, path = self._prepare_root()
        result = ExperimentResult(self.name, x_label="architecture index")
        for index, architecture in enumerate(self.architectures):
            load = self.run_one(architecture, root, path)
            result.add(
                ResultRow(
                    experiment=self.name,
                    server=architecture,
                    x=float(index),
                    bandwidth_mbps=load.bandwidth_mbps,
                    request_rate=load.request_rate,
                    details={
                        "requests": load.requests_completed,
                        "errors": load.errors,
                        "file_size": self.settings.file_size,
                    },
                )
            )
        return result

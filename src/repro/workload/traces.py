"""Trace-based workloads modeled on the Rice University server logs.

The paper's realistic experiments replay access logs from three Rice
University web servers:

* the **CS** departmental server — a larger data set with larger average
  transfers, disk-intensive relative to the testbed's memory;
* the **Owlnet** server (personal pages of ~4500 students and staff) — a
  smaller data set with good cache locality but smaller average transfers;
* the **ECE** departmental server — used for the data-set-size sweep, where
  the log is truncated at different points to produce working sets from
  15 MB to 150 MB.

The original logs are not available, so :class:`TraceWorkload` generates
synthetic traces with the same aggregate characteristics: a file catalog
whose sizes follow a log-normal body with a Pareto-ish tail (the standard
model of web file sizes), request popularity following a Zipf-like
distribution, and per-trace parameters (catalog size, mean file size, skew)
chosen so the data-set size and mean transfer size land where the paper's
description puts them.  :class:`TraceSpec` holds those parameters, and the
three presets are exported as :data:`CS_TRACE`, :data:`OWLNET_TRACE` and
:data:`ECE_TRACE`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.workload.zipf import ZipfSampler

MB = 1024 * 1024


@dataclass(frozen=True)
class TraceSpec:
    """Parameters describing one synthetic access trace."""

    name: str
    #: Number of distinct files in the catalog.
    num_files: int
    #: Target total size of all distinct files (the data-set size).
    dataset_bytes: int
    #: Mean of the file-size distribution (bytes).
    mean_file_size: int
    #: Zipf skew of document popularity.
    zipf_alpha: float = 0.9
    #: Sigma of the underlying log-normal size distribution.
    size_sigma: float = 1.4
    #: Random seed (catalog and request stream are deterministic given it).
    seed: int = 42

    def scaled_to_dataset(self, dataset_bytes: int) -> "TraceSpec":
        """A spec truncated/extended to a different data-set size.

        This mirrors the paper's methodology for the ECE trace: "we use the
        access logs … and truncate them as appropriate to achieve a given
        dataset size."  Truncating a log keeps the same file population
        characteristics but fewer distinct files, so the number of files is
        scaled proportionally to the data-set size.
        """
        if dataset_bytes <= 0:
            raise ValueError("dataset_bytes must be positive")
        ratio = dataset_bytes / self.dataset_bytes
        return replace(
            self,
            name=f"{self.name}-{dataset_bytes // MB}MB",
            dataset_bytes=dataset_bytes,
            num_files=max(16, int(round(self.num_files * ratio))),
        )


#: CS departmental server: big data set, larger transfers, disk-intensive.
CS_TRACE = TraceSpec(
    name="cs",
    num_files=12000,
    dataset_bytes=135 * MB,
    mean_file_size=15 * 1024,
    zipf_alpha=0.88,
    size_sigma=1.1,
    seed=101,
)

#: Owlnet personal-pages server: smaller data set, good locality, small files.
OWLNET_TRACE = TraceSpec(
    name="owlnet",
    num_files=17000,
    dataset_bytes=95 * MB,
    mean_file_size=5_600,
    zipf_alpha=0.97,
    size_sigma=1.1,
    seed=202,
)

#: ECE departmental server: the base trace for the data-set-size sweep.
ECE_TRACE = TraceSpec(
    name="ece",
    num_files=10000,
    dataset_bytes=150 * MB,
    mean_file_size=15 * 1024,
    zipf_alpha=0.60,
    size_sigma=1.1,
    seed=303,
)


class TraceWorkload:
    """A synthetic access trace: file catalog plus per-client request streams.

    The interface matches what the simulation's closed-loop clients and the
    functional load generator need:

    * :attr:`files` — the catalog as ``(file_id, size)`` pairs;
    * :meth:`next_request` — the next request of a given client (each client
      has an independent deterministic stream);
    * :meth:`request_paths` / :meth:`path_for` — URL paths for the
      functional layer, paired with :func:`repro.workload.dataset.materialize_catalog`.
    """

    def __init__(self, spec: TraceSpec):
        self.spec = spec
        self._files = self._build_catalog(spec)
        self._popularity = self._assign_popularity(spec, len(self._files))
        self._client_rngs: dict[int, ZipfSampler] = {}

    # -- catalog construction ---------------------------------------------------

    @staticmethod
    def _build_catalog(spec: TraceSpec) -> list[tuple[str, int]]:
        """Draw file sizes until the catalog reaches the target data-set size."""
        rng = random.Random(spec.seed)
        # Log-normal parameterized to the requested mean: mean = exp(mu + sigma^2/2).
        sigma = spec.size_sigma
        mu = math.log(spec.mean_file_size) - sigma * sigma / 2.0
        sizes = []
        for _ in range(spec.num_files):
            size = int(rng.lognormvariate(mu, sigma)) + 64
            sizes.append(size)
        # Rescale so the total matches the requested data-set size exactly
        # enough (integer rounding aside); this keeps the sweep's x-axis honest.
        total = sum(sizes)
        scale = spec.dataset_bytes / total
        sizes = [max(64, int(size * scale)) for size in sizes]
        return [(f"{spec.name}/file{i:06d}", size) for i, size in enumerate(sizes)]

    @staticmethod
    def _assign_popularity(spec: TraceSpec, count: int) -> list[int]:
        """Map popularity rank -> file index.

        Popularity is not correlated with size (rank order is a seeded
        shuffle of the catalog), matching the empirical observation that hot
        documents are not systematically the largest ones.
        """
        rng = random.Random(spec.seed + 1)
        indices = list(range(count))
        rng.shuffle(indices)
        return indices

    # -- catalog properties --------------------------------------------------------

    @property
    def files(self) -> list[tuple[str, int]]:
        """The catalog as ``(file_id, size)`` pairs."""
        return list(self._files)

    @property
    def dataset_size(self) -> int:
        """Total bytes of distinct content."""
        return sum(size for _, size in self._files)

    @property
    def mean_file_size(self) -> float:
        """Mean file size of the catalog."""
        return self.dataset_size / len(self._files) if self._files else 0.0

    @property
    def mean_transfer_size(self) -> float:
        """Expected transfer size per request (popularity-weighted mean)."""
        sampler = ZipfSampler(len(self._files), self.spec.zipf_alpha, seed=0)
        total = 0.0
        for rank in range(len(self._files)):
            index = self._popularity[rank]
            total += sampler.probability(rank) * self._files[index][1]
        return total

    def hottest_files(self, budget_bytes: int) -> list[tuple[str, int]]:
        """The most popular files whose cumulative size fits ``budget_bytes``.

        Used to warm the simulated buffer cache to its steady state before
        measurement, and by tests to reason about expected hit rates.
        """
        chosen = []
        used = 0
        for rank in range(len(self._files)):
            file_id, size = self._files[self._popularity[rank]]
            if used + size > budget_bytes:
                break
            chosen.append((file_id, size))
            used += size
        return chosen

    # -- request streams --------------------------------------------------------------

    def next_request(self, client_id: int = 0) -> tuple[str, int]:
        """The next request issued by ``client_id`` (deterministic per client)."""
        sampler = self._client_rngs.get(client_id)
        if sampler is None:
            sampler = ZipfSampler(
                len(self._files), self.spec.zipf_alpha, seed=self.spec.seed * 1000 + client_id
            )
            self._client_rngs[client_id] = sampler
        rank = sampler.sample()
        return self._files[self._popularity[rank]]

    def request_stream(self, count: int, client_id: int = 0) -> list[tuple[str, int]]:
        """A list of ``count`` requests from one client's stream."""
        return [self.next_request(client_id) for _ in range(count)]

    # -- functional-layer helpers --------------------------------------------------------

    @staticmethod
    def path_for(file_id: str) -> str:
        """URL path under which :func:`materialize_catalog` exposes ``file_id``."""
        return "/" + file_id

    def request_paths(self, count: int, client_id: int = 0) -> list[str]:
        """URL paths for ``count`` requests (for the functional load generator)."""
        return [self.path_for(file_id) for file_id, _ in self.request_stream(count, client_id)]

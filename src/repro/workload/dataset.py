"""Materialize a workload's file catalog as real files on disk.

The functional layer (real sockets, real servers) and the simulation layer
share workload definitions.  For the functional layer the catalog must exist
as actual files under a document root; this module writes them, generating
deterministic pseudo-random content so responses have realistic bodies
without shipping any data files in the repository.
"""

from __future__ import annotations

import os
import random
from typing import Iterable


def materialize_catalog(
    document_root: str,
    files: Iterable[tuple[str, int]],
    *,
    seed: int = 7,
    max_total_bytes: int | None = None,
) -> list[str]:
    """Create the catalog's files under ``document_root``.

    Parameters
    ----------
    document_root:
        Directory to create the files in (created if missing).
    files:
        Iterable of ``(file_id, size)`` pairs; ``file_id`` may contain
        slashes, which become subdirectories.
    seed:
        Seed for the deterministic content generator.
    max_total_bytes:
        Optional safety cap: stop once this much content has been written
        (useful in tests that only need a small, representative subset).

    Returns
    -------
    list of str
        URL paths (leading slash, forward slashes) of the files created, in
        catalog order — suitable to hand directly to the load generator.
    """
    rng = random.Random(seed)
    os.makedirs(document_root, exist_ok=True)
    created = []
    written = 0
    for file_id, size in files:
        if max_total_bytes is not None and written + size > max_total_bytes:
            break
        relative = file_id.lstrip("/")
        target = os.path.join(document_root, *relative.split("/"))
        os.makedirs(os.path.dirname(target) or document_root, exist_ok=True)
        with open(target, "wb") as handle:
            handle.write(_content(rng, size))
        created.append("/" + relative)
        written += size
    return created


def _content(rng: random.Random, size: int) -> bytes:
    """Deterministic filler content of exactly ``size`` bytes."""
    if size <= 0:
        return b""
    # A repeated pseudo-random block keeps generation fast for large files
    # while still producing non-trivial, non-compressible-looking bodies.
    block = bytes(rng.getrandbits(8) for _ in range(min(size, 4096)))
    repeats = size // len(block) + 1
    return (block * repeats)[:size]

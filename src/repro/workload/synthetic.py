"""Synthetic single-file workload (paper Section 6.1).

"A set of clients repeatedly request the same file, where the file size is
varied in each test."  The workload is trivially cacheable, so it measures a
server's peak request-processing rate and peak output bandwidth without any
disk activity — which is why the architectures barely differ on it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SingleFileWorkload:
    """Every request asks for the same file of ``file_size`` bytes."""

    file_size: int
    file_id: str = "single-file"

    def __post_init__(self) -> None:
        if self.file_size < 0:
            raise ValueError("file_size must be non-negative")

    @property
    def files(self) -> list[tuple[str, int]]:
        """The catalog: one file."""
        return [(self.file_id, self.file_size)]

    @property
    def dataset_size(self) -> int:
        """Total bytes of distinct content."""
        return self.file_size

    @property
    def mean_file_size(self) -> float:
        """Average transfer size (trivially the file size)."""
        return float(self.file_size)

    def next_request(self, client_id: int = 0) -> tuple[str, int]:
        """The next request made by ``client_id`` (always the same file)."""
        return (self.file_id, self.file_size)

    def request_path(self) -> str:
        """The URL path the functional layer serves this workload under."""
        return f"/{self.file_id}.bin"

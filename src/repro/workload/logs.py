"""Access-log parsing and replay (Common Log Format).

The paper replays real server access logs against the servers under test.
Users of this reproduction who have their own logs can do the same: this
module parses NCSA Common Log Format lines into :class:`LogEntry` records,
converts them into request streams for the load generator or the simulator,
and can also serialize synthetic traces back out as logs (useful for
round-trip tests and for feeding other tools).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

#: host ident authuser [date] "request" status bytes
_CLF_PATTERN = re.compile(
    r'^(?P<host>\S+)\s+(?P<ident>\S+)\s+(?P<user>\S+)\s+'
    r'\[(?P<timestamp>[^\]]+)\]\s+'
    r'"(?P<method>\S+)\s+(?P<path>\S+)(?:\s+(?P<protocol>[^"]+))?"\s+'
    r'(?P<status>\d{3})\s+(?P<size>\d+|-)\s*$'
)


@dataclass(frozen=True)
class LogEntry:
    """One parsed access-log line."""

    host: str
    timestamp: str
    method: str
    path: str
    protocol: str
    status: int
    size: int

    @property
    def ok(self) -> bool:
        """Whether the original response was successful (2xx)."""
        return 200 <= self.status < 300


def parse_common_log_line(line: str) -> Optional[LogEntry]:
    """Parse one Common Log Format line; return ``None`` for malformed lines.

    Real logs always contain some garbage (truncated lines, attack noise);
    replay tooling must shrug it off rather than abort, so malformed lines
    are skipped instead of raising.
    """
    match = _CLF_PATTERN.match(line.strip())
    if not match:
        return None
    size_field = match.group("size")
    return LogEntry(
        host=match.group("host"),
        timestamp=match.group("timestamp"),
        method=match.group("method").upper(),
        path=match.group("path"),
        protocol=(match.group("protocol") or "HTTP/1.0").strip(),
        status=int(match.group("status")),
        size=0 if size_field == "-" else int(size_field),
    )


def parse_common_log(lines: Iterable[str]) -> Iterator[LogEntry]:
    """Parse an iterable of log lines, yielding only well-formed entries."""
    for line in lines:
        if not line.strip():
            continue
        entry = parse_common_log_line(line)
        if entry is not None:
            yield entry


def write_common_log(entries: Iterable[LogEntry]) -> Iterator[str]:
    """Serialize entries back into Common Log Format lines."""
    for entry in entries:
        yield (
            f'{entry.host} - - [{entry.timestamp}] '
            f'"{entry.method} {entry.path} {entry.protocol}" '
            f'{entry.status} {entry.size}'
        )


def replay_requests(
    entries: Iterable[LogEntry],
    *,
    methods: tuple[str, ...] = ("GET",),
    successful_only: bool = True,
) -> list[tuple[str, int]]:
    """Convert log entries into a ``(path, size)`` request stream.

    The paper replays logs "as a loop to generate requests"; the returned
    list is the loop body.  Error responses and non-GET methods are dropped
    by default because they do not correspond to static files the servers
    could serve again.
    """
    stream = []
    for entry in entries:
        if entry.method not in methods:
            continue
        if successful_only and not entry.ok:
            continue
        stream.append((entry.path, entry.size))
    return stream


def dataset_of(stream: Iterable[tuple[str, int]]) -> int:
    """The data-set size of a request stream: total bytes of distinct paths.

    Mirrors the paper's notion of data-set size used on the x-axis of the
    real-workload figures.
    """
    seen: dict[str, int] = {}
    for path, size in stream:
        seen[path] = max(size, seen.get(path, 0))
    return sum(seen.values())


def truncate_to_dataset(
    stream: list[tuple[str, int]], dataset_bytes: int
) -> list[tuple[str, int]]:
    """Truncate a request stream so its data-set size is at most ``dataset_bytes``.

    This is the operation the paper applies to the ECE logs: cutting the log
    at the point where the cumulative distinct content reaches the target
    size, then replaying only the prefix.
    """
    seen: dict[str, int] = {}
    total = 0
    result = []
    for path, size in stream:
        if path not in seen:
            if total + size > dataset_bytes:
                break
            seen[path] = size
            total += size
        result.append((path, size))
    return result

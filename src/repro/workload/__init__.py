"""Workloads: the request streams the paper's evaluation uses.

Three kinds of workload drive the evaluation (Section 6):

* the **synthetic single-file test** — every client repeatedly requests the
  same cached file, with the file size swept across tests
  (:mod:`repro.workload.synthetic`);
* **trace-based workloads** replayed from the access logs of Rice
  University web servers (the CS and Owlnet departmental servers, and the
  ECE server truncated to different data-set sizes).  The real logs are not
  available, so :mod:`repro.workload.traces` generates synthetic traces with
  Zipf document popularity and log-normal file sizes whose aggregate
  characteristics (data-set size, mean transfer size, locality) match what
  the paper reports about each trace;
* **access-log replay** for users who do have logs in Common Log Format
  (:mod:`repro.workload.logs`).

:mod:`repro.workload.dataset` materializes a workload's file catalog as real
files on disk so the functional servers can serve the same workloads that
the simulator models.
"""

from repro.workload.synthetic import SingleFileWorkload
from repro.workload.traces import (
    CS_TRACE,
    ECE_TRACE,
    OWLNET_TRACE,
    TraceSpec,
    TraceWorkload,
)
from repro.workload.zipf import ZipfSampler
from repro.workload.logs import LogEntry, parse_common_log, replay_requests, write_common_log
from repro.workload.dataset import materialize_catalog

__all__ = [
    "SingleFileWorkload",
    "TraceWorkload",
    "TraceSpec",
    "CS_TRACE",
    "OWLNET_TRACE",
    "ECE_TRACE",
    "ZipfSampler",
    "LogEntry",
    "parse_common_log",
    "write_common_log",
    "replay_requests",
    "materialize_catalog",
]

"""Deterministic Zipf-like popularity sampling.

Web server access patterns are strongly skewed: a small number of documents
receives most of the requests (Arlitt & Williamson's invariants, cited by
the paper).  The standard model is a Zipf-like distribution where the i-th
most popular document is requested with probability proportional to
``1 / i**alpha``.  The sampler below is deterministic given its seed, which
keeps every simulation run reproducible.
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence


class ZipfSampler:
    """Samples ranks 0..n-1 with probability proportional to 1/(rank+1)**alpha.

    Parameters
    ----------
    n:
        Number of distinct items.
    alpha:
        Skew parameter; 0 is uniform, ~0.8-1.0 matches measured web
        workloads.
    seed:
        Seed for the private random generator (determinism).
    """

    def __init__(self, n: int, alpha: float = 0.9, seed: int = 1):
        if n < 1:
            raise ValueError("n must be at least 1")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        self._rng = random.Random(seed)
        weights = [1.0 / ((rank + 1) ** alpha) for rank in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one rank (0 = most popular)."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u)

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` ranks."""
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """The stationary probability of ``rank``."""
        if not 0 <= rank < self.n:
            raise IndexError("rank out of range")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous

    def expected_hit_rate(self, cached_ranks: int) -> float:
        """Probability mass covered by the ``cached_ranks`` most popular items.

        Useful for analytical sanity checks of the buffer-cache hit rate when
        the cache holds the hottest documents.
        """
        if cached_ranks <= 0:
            return 0.0
        cached_ranks = min(cached_ranks, self.n)
        return self._cumulative[cached_ranks - 1]


def interleave(sequences: Sequence[Sequence[int]], seed: int = 1) -> list[int]:
    """Randomly interleave several request sequences into one stream.

    Used to combine per-client request streams into a single server-side
    arrival order for analysis; the interleaving preserves each sequence's
    internal order.
    """
    rng = random.Random(seed)
    positions = [0] * len(sequences)
    remaining = sum(len(seq) for seq in sequences)
    result = []
    active = [i for i, seq in enumerate(sequences) if seq]
    while remaining:
        index = rng.choice(active)
        seq = sequences[index]
        result.append(seq[positions[index]])
        positions[index] += 1
        remaining -= 1
        if positions[index] >= len(seq):
            active.remove(index)
    return result

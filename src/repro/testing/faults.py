"""Fault-injection harness for the robustness tests and chaos benchmarks.

A production front-end's failure handling is only trustworthy if it is
*exercised*: fd exhaustion, helper death and disk errors are rare enough in
a test environment that the recovery paths would otherwise ship untested.
This module compiles named **failure points** into the server code; each is
a zero-cost no-op until a :class:`FaultPlan` arms it, after which it fires
a scripted number of times and then disarms itself.

Failure points wired into the code base:

``accept_emfile``
    The accept path behaves as if ``accept(2)`` failed with ``EMFILE``
    (fd exhaustion) — exercises the fd-reserve sentinel guard and the
    accept-pause machinery in :mod:`repro.core.admission`.
``disk_read``
    :meth:`repro.core.pipeline.ContentStore.read_file_range` raises
    ``OSError(EIO)`` — exercises the disk-failure error path on every
    architecture's buffered read route.
``helper_death``
    An AMPED process helper calls ``os._exit(1)`` on its next operation —
    exercises the PR 3 helper-death detection (pipe EOF, reply synthesis,
    degradation to surviving helpers).
``shard_kill_after`` *(value = seconds, float)*
    A supervised shard SIGKILLs itself that many seconds after starting —
    lets a single-command chaos run exercise the supervisor's restart
    machinery without an external killer.

Arming
------

Programmatic (in-process tests)::

    from repro.testing import faults
    faults.arm("accept_emfile", count=2)
    ...
    faults.reset()

Environment (spawned shard/worker processes)::

    REPRO_FAULTS="accept_emfile=2,helper_death=1,shard_kill_after=0.5"

The plan is read from ``REPRO_FAULTS`` once at import; spawned processes
inherit the environment, so exporting the variable before starting a shard
fleet arms every shard.  Counts are consumed under a lock, so thread-mode
helpers and MT workers can share one plan safely.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

__all__ = ["FaultPlan", "faults", "ENV_VAR"]

#: Environment variable holding the fault plan for spawned processes.
ENV_VAR = "REPRO_FAULTS"

#: The failure points compiled into the code base.  ``arm`` rejects unknown
#: names so a typo in a chaos script fails loudly instead of silently
#: injecting nothing.
KNOWN_POINTS = frozenset(
    {"accept_emfile", "disk_read", "helper_death", "shard_kill_after"}
)


class FaultPlan:
    """A set of armed failure points with per-point firing budgets.

    ``take(point)`` consumes one firing and returns True while the budget
    lasts; ``value(point)`` reads a float-valued point (e.g. a delay)
    without consuming it.  Both are no-ops (False / None) for unarmed
    points, which is the steady state in production and in every test that
    does not opt in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._values: dict[str, float] = {}

    # -- arming -----------------------------------------------------------------

    def arm(self, point: str, count: int = 1, value: Optional[float] = None) -> None:
        """Arm ``point`` to fire ``count`` times (or carry ``value``)."""
        if point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {sorted(KNOWN_POINTS)}"
            )
        with self._lock:
            if value is not None:
                self._values[point] = float(value)
            else:
                self._counts[point] = self._counts.get(point, 0) + int(count)

    def reset(self) -> None:
        """Disarm every point (tests call this in teardown)."""
        with self._lock:
            self._counts.clear()
            self._values.clear()

    def load_env(self, text: Optional[str] = None) -> None:
        """Arm points from a ``REPRO_FAULTS``-style string.

        Format: comma-separated ``point=value`` pairs.  An integer value is
        a firing count; a value containing ``.`` is stored as a float
        (``value(point)`` reads it).  A bare ``point`` arms one firing.
        Unknown points raise, so a typo in a chaos script is an error.
        """
        if text is None:
            text = os.environ.get(ENV_VAR, "")
        for item in filter(None, (part.strip() for part in text.split(","))):
            name, _, raw = item.partition("=")
            name = name.strip()
            raw = raw.strip()
            if not raw:
                self.arm(name)
            elif "." in raw:
                self.arm(name, value=float(raw))
            else:
                self.arm(name, count=int(raw))

    # -- firing ------------------------------------------------------------------

    def take(self, point: str) -> bool:
        """Consume one firing of ``point``; False when unarmed/exhausted."""
        with self._lock:
            remaining = self._counts.get(point, 0)
            if remaining <= 0:
                return False
            self._counts[point] = remaining - 1
            return True

    def value(self, point: str) -> Optional[float]:
        """The float value armed for ``point`` (None when unarmed)."""
        with self._lock:
            return self._values.get(point)

    def armed(self, point: str) -> bool:
        """Whether ``point`` has budget (or a value) left."""
        with self._lock:
            return self._counts.get(point, 0) > 0 or point in self._values

    def snapshot(self) -> dict:
        """Remaining budgets and values (for assertions and debugging)."""
        with self._lock:
            return {"counts": dict(self._counts), "values": dict(self._values)}


#: The process-wide plan every compiled-in failure point consults.  Spawned
#: processes re-read ``REPRO_FAULTS`` at import, so arming via environment
#: reaches shard fleets and process-mode helpers.
faults = FaultPlan()
faults.load_env()

"""Test-support machinery that ships with the library.

:mod:`repro.testing.faults` is the fault-injection harness the chaos
benchmarks and the robustness e2e tests drive: named failure points
compiled into the server code fire a scripted number of times when a
fault plan arms them, and are zero-cost no-ops otherwise.
"""

from repro.testing.faults import FaultPlan, faults

__all__ = ["FaultPlan", "faults"]

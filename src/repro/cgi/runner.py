"""Persistent CGI-style application runner (paper Section 5.6).

The original Flash forwards dynamic requests to CGI-bin application
*processes* via pipes and keeps those processes alive across requests
(FastCGI-style).  Here a CGI application is a Python callable registered
under a name; requests to ``/cgi-bin/<name>`` are forwarded to a persistent
worker dedicated to that application.  Workers are created lazily on first
use ("if a process does not currently exist, the server creates it"),
process one request at a time, and return the generated document.

As with the AMPED helpers, two worker realizations exist:

``"thread"`` (default)
    One persistent thread per application.  Because the application runs
    outside the event loop, it can block or compute for a long time without
    stalling the server, which is the property Section 5.6 cares about.
``"process"``
    One persistent process per application, communicating over a pipe —
    faithful to the paper; requires the application callable and its results
    to be picklable (with the default ``fork`` start method this is almost
    always true).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue
import socket
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.event_loop import EVENT_READ
from repro.http.errors import NotFoundError
from repro.http.request import HTTPRequest

logger = logging.getLogger(__name__)

#: Signature of a CGI application: it receives the request data and returns
#: the response body (HTML) as bytes.
CGIProgram = Callable[["CGIRequestData"], bytes]


@dataclass
class CGIRequestData:
    """The picklable subset of a request forwarded to a CGI application."""

    program: str
    path: str
    query: str = ""
    method: str = "GET"
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def from_request(cls, program: str, request: HTTPRequest) -> "CGIRequestData":
        """Extract the CGI-visible fields from a parsed HTTP request."""
        return cls(
            program=program,
            path=request.path,
            query=request.query,
            method=request.method,
            headers=dict(request.headers),
            body=request.body,
        )


@dataclass
class _CGIJob:
    seq: int
    data: CGIRequestData


@dataclass
class _CGIDone:
    seq: int
    ok: bool
    body: bytes = b""
    error_message: str = ""


class CGIRunner:
    """Dispatches dynamic requests to persistent per-application workers.

    Parameters
    ----------
    programs:
        Mapping of application name (the path component after
        ``/cgi-bin/``) to the application callable.
    prefix:
        URI prefix that identifies dynamic requests.
    mode:
        ``"thread"`` or ``"process"`` worker realization.
    """

    def __init__(
        self,
        programs: Optional[dict] = None,
        prefix: str = "/cgi-bin/",
        mode: str = "thread",
    ):
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.programs: dict[str, CGIProgram] = dict(programs or {})
        self.prefix = prefix
        self.mode = mode
        self._seq = 0
        self._callbacks: dict[int, Callable] = {}
        self._workers: dict[str, _Worker] = {}
        self._done_queue: queue.Queue = queue.Queue()
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._closed = False
        self.requests_run = 0

    # -- registration ---------------------------------------------------------

    def register_program(self, name: str, program: CGIProgram) -> None:
        """Add (or replace) an application.  Its worker starts on first use."""
        self.programs[name] = program

    def program_name(self, request: HTTPRequest) -> str:
        """Extract the application name from a dynamic request path."""
        if not request.path.startswith(self.prefix):
            raise NotFoundError(f"not a CGI path: {request.path}")
        name = request.path[len(self.prefix):].split("/", 1)[0]
        if not name or name not in self.programs:
            raise NotFoundError(f"no such CGI program: {name!r}")
        return name

    # -- synchronous execution (MP/MT builds) -----------------------------------

    def run(self, request: HTTPRequest) -> bytes:
        """Run the application for ``request`` and return the document body.

        This blocks the caller until the application finishes, which is the
        natural mode for the MP and MT builds where each worker handles one
        request at a time anyway.
        """
        name = self.program_name(request)
        worker = self._worker_for(name)
        data = CGIRequestData.from_request(name, request)
        done = worker.run_sync(data)
        self.requests_run += 1
        if not done.ok:
            raise RuntimeError(f"CGI program {name!r} failed: {done.error_message}")
        return done.body

    # -- asynchronous execution (SPED/AMPED builds) -------------------------------

    def submit(self, request: HTTPRequest, callback: Callable) -> None:
        """Run the application without blocking; ``callback(body, error)`` later.

        Completions are delivered through :meth:`process_completions`, which
        the event loop invokes when the runner's wakeup channel becomes
        readable (see :meth:`register`).
        """
        try:
            name = self.program_name(request)
        except NotFoundError as exc:
            callback(None, exc)
            return
        worker = self._worker_for(name)
        self._seq += 1
        self._callbacks[self._seq] = callback
        data = CGIRequestData.from_request(name, request)
        worker.run_async(_CGIJob(seq=self._seq, data=data), self._deliver)

    def register(self, loop) -> None:
        """Register the completion channel with an event loop."""
        loop.register(
            self._wakeup_recv,
            EVENT_READ,
            lambda _fileobj, _mask: self.process_completions(),
        )

    def unregister(self, loop) -> None:
        """Remove the completion channel from an event loop."""
        loop.unregister(self._wakeup_recv)

    def process_completions(self) -> int:
        """Invoke callbacks for every finished application request."""
        try:
            try:
                while self._wakeup_recv.recv(4096):
                    pass
            except (BlockingIOError, InterruptedError):
                pass
            processed = 0
            while True:
                try:
                    done = self._done_queue.get_nowait()
                except queue.Empty:
                    break
                callback = self._callbacks.pop(done.seq, None)
                self.requests_run += 1
                if callback is not None:
                    if done.ok:
                        callback(done.body, None)
                    else:
                        callback(None, RuntimeError(done.error_message))
                processed += 1
            return processed
        except Exception:
            # Crash barrier (lint rule RL005): runs as a loop readiness
            # callback; a response-callback bug must not kill the loop.
            logger.exception("unhandled error draining CGI completions (absorbed)")
            return 0

    def _deliver(self, done: _CGIDone) -> None:
        self._done_queue.put(done)
        try:
            self._wakeup_send.send(b"\0")
        except OSError:
            pass

    # -- lifecycle ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self._wakeup_recv.close()
        self._wakeup_send.close()

    @property
    def active_workers(self) -> int:
        """Number of application workers currently alive."""
        return len(self._workers)

    def _worker_for(self, name: str) -> "_Worker":
        worker = self._workers.get(name)
        if worker is None:
            program = self.programs[name]
            if self.mode == "thread":
                worker = _ThreadWorker(name, program)
            else:
                worker = _ProcessWorker(name, program)
            self._workers[name] = worker
        return worker


class _Worker:
    """Interface of a persistent per-application worker."""

    def run_sync(self, data: CGIRequestData) -> _CGIDone:
        raise NotImplementedError

    def run_async(self, job: _CGIJob, deliver: Callable[[_CGIDone], None]) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


def _execute(program: CGIProgram, data: CGIRequestData, seq: int) -> _CGIDone:
    try:
        body = program(data)
        if isinstance(body, str):
            body = body.encode("utf-8")
        return _CGIDone(seq=seq, ok=True, body=body)
    except Exception as exc:  # noqa: BLE001 - worker must survive app errors
        return _CGIDone(seq=seq, ok=False, error_message=f"{type(exc).__name__}: {exc}")


class _ThreadWorker(_Worker):
    """Persistent worker thread dedicated to one application."""

    def __init__(self, name: str, program: CGIProgram):
        self.name = name
        self.program = program
        self._jobs: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._main, name=f"cgi-{name}", daemon=True
        )
        self._thread.start()

    def _main(self) -> None:
        while True:
            item = self._jobs.get()
            if item is None:
                return
            job, deliver = item
            deliver(_execute(self.program, job.data, job.seq))

    def run_sync(self, data: CGIRequestData) -> _CGIDone:
        result_box: queue.Queue = queue.Queue()
        self._jobs.put((_CGIJob(seq=0, data=data), result_box.put))
        return result_box.get()

    def run_async(self, job: _CGIJob, deliver: Callable[[_CGIDone], None]) -> None:
        self._jobs.put((job, deliver))

    def stop(self) -> None:
        self._jobs.put(None)
        self._thread.join(timeout=5.0)


class _ProcessWorker(_Worker):
    """Persistent worker process dedicated to one application.

    A small bridging thread reads completions from the process pipe and
    forwards them to the requesting callback, so the asynchronous interface
    matches the thread worker's.
    """

    def __init__(self, name: str, program: CGIProgram):
        self.name = name
        context = multiprocessing.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._parent_conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_process_worker_main,
            args=(child_conn, program),
            name=f"cgi-{name}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()

    def run_sync(self, data: CGIRequestData) -> _CGIDone:
        with self._lock:
            self._parent_conn.send((0, data))
            seq, done = self._parent_conn.recv()
            return done

    def run_async(self, job: _CGIJob, deliver: Callable[[_CGIDone], None]) -> None:
        def bridge():
            with self._lock:
                self._parent_conn.send((job.seq, job.data))
                _seq, done = self._parent_conn.recv()
            deliver(done)

        threading.Thread(target=bridge, daemon=True).start()

    def stop(self) -> None:
        try:
            self._parent_conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
        self._parent_conn.close()


def _process_worker_main(conn, program: CGIProgram) -> None:
    """Entry point of a persistent CGI worker process."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        seq, data = item
        done = _execute(program, data, seq)
        try:
            conn.send((seq, done))
        except (BrokenPipeError, OSError):
            return

"""Persistent CGI-style application runner (paper Section 5.6).

The original Flash forwards dynamic requests to CGI-bin application
*processes* via pipes and keeps those processes alive across requests
(FastCGI-style).  Here a CGI application is a Python callable registered
under a name; requests to ``/cgi-bin/<name>`` are forwarded to a persistent
worker dedicated to that application.  Workers are created lazily on first
use ("if a process does not currently exist, the server creates it"),
process one request at a time, and return the generated document.

As with the AMPED helpers, two worker realizations exist:

``"thread"`` (default)
    One persistent thread per application.  Because the application runs
    outside the event loop, it can block or compute for a long time without
    stalling the server, which is the property Section 5.6 cares about.
``"process"``
    One persistent process per application, communicating over a pipe —
    faithful to the paper; requires the application callable and its results
    to be picklable (with the default ``fork`` start method this is almost
    always true).

Streaming applications
----------------------

An application that returns *bytes* (or ``str``) is buffered exactly as
before.  An application that returns an **iterator/generator** streams:
its chunks flow through a *bounded* per-request queue
(``stream_depth`` entries) to the consumer, and the worker blocks on
``put`` when the queue is full — which is the CGI half of the streaming
backpressure design.  When the consuming connection pauses its source
(socket stopped draining), chunk notifications stop, the queue fills,
and the child blocks in its pipe/queue write instead of the server
buffering unboundedly; process-mode children block in the OS pipe the
same way.  ``cancel`` (set when the consumer is reaped) unblocks the
worker and lets it run the generator's ``finally`` blocks.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue
import socket
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

from repro.core.event_loop import EVENT_READ
from repro.core.streaming import END_OF_STREAM, ResponseSource, WOULD_BLOCK
from repro.http.errors import NotFoundError
from repro.http.request import HTTPRequest

logger = logging.getLogger(__name__)

#: Signature of a CGI application: it receives the request data and returns
#: the response body as bytes (buffered) or an iterator of chunks (streamed).
CGIProgram = Callable[["CGIRequestData"], Union[bytes, Iterator[bytes]]]


@dataclass
class CGIRequestData:
    """The picklable subset of a request forwarded to a CGI application."""

    program: str
    path: str
    query: str = ""
    method: str = "GET"
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def from_request(cls, program: str, request: HTTPRequest) -> "CGIRequestData":
        """Extract the CGI-visible fields from a parsed HTTP request."""
        return cls(
            program=program,
            path=request.path,
            query=request.query,
            method=request.method,
            headers=dict(request.headers),
            body=request.body,
        )


@dataclass
class _CGIJob:
    seq: int
    data: CGIRequestData


@dataclass
class _CGIDone:
    seq: int
    ok: bool
    body: bytes = b""
    error_message: str = ""


@dataclass
class _CGIStreamStart:
    """First delivery of a streaming request: the bounded chunk queue."""

    seq: int
    chunks: queue.Queue
    cancel: threading.Event


@dataclass
class _CGIStreamData:
    """A chunk landed in the stream's queue (wakeup marker, carries no data)."""

    seq: int


@dataclass
class _CGIStreamEnd:
    """The stream's producer finished (the in-queue ``_StreamEnd`` is final)."""

    seq: int
    error_message: str = ""


class _StreamEnd:
    """In-queue terminator: follows the last chunk through the chunk queue."""

    __slots__ = ("error_message",)

    def __init__(self, error_message: str = "") -> None:
        self.error_message = error_message


def _put_with_cancel(chunks: queue.Queue, item, cancel: threading.Event) -> bool:
    """Bounded put that aborts when the consumer cancelled the stream.

    The blocking ``put`` on a full queue IS the backpressure: the worker
    (and through it a process-mode child blocked in its pipe) stalls until
    the consumer drains or gives up.  Polls the cancel flag so a reaped
    consumer cannot wedge the worker forever.
    """
    while not cancel.is_set():
        try:
            chunks.put(item, timeout=0.1)
            return True
        except queue.Full:
            continue
    return False


class CGIStreamSource(ResponseSource):
    """Streaming CGI output as a :class:`ResponseSource`.

    Wraps the bounded chunk queue a worker fills.  ``pause`` suppresses
    ready-notifications (the event-driven analog of unregistering the
    child pipe): chunks keep landing until the queue is full, at which
    point the producer blocks.  ``close`` sets the cancel flag and drains
    the queue so a blocked producer wakes up and can tear down.
    """

    def __init__(self, chunks: queue.Queue, cancel: threading.Event) -> None:
        super().__init__()
        self._chunks = chunks
        self._cancel = cancel
        self._paused = False
        self._ended = False
        self._closed = False

    def next_segment(self):
        if self._ended or self._closed:
            return END_OF_STREAM
        try:
            item = self._chunks.get_nowait()
        except queue.Empty:
            return WOULD_BLOCK
        if isinstance(item, _StreamEnd):
            self._ended = True
            if item.error_message:
                self.failed = True
            return END_OF_STREAM
        return item

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False

    def notify_data(self) -> None:
        """Chunk arrived: wake the parked consumer unless it paused us."""
        if not self._paused and not self._closed:
            self.notify_ready()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._cancel.set()
        try:
            while True:
                self._chunks.get_nowait()
        except queue.Empty:
            pass


class CGIRunner:
    """Dispatches dynamic requests to persistent per-application workers.

    Parameters
    ----------
    programs:
        Mapping of application name (the path component after
        ``/cgi-bin/``) to the application callable.
    prefix:
        URI prefix that identifies dynamic requests.
    mode:
        ``"thread"`` or ``"process"`` worker realization.
    stream_depth:
        Bound on the per-request chunk queue of a streaming application;
        the producer blocks once this many chunks are unconsumed.
    """

    def __init__(
        self,
        programs: Optional[dict] = None,
        prefix: str = "/cgi-bin/",
        mode: str = "thread",
        stream_depth: int = 8,
    ):
        if mode not in ("thread", "process"):
            raise ValueError("mode must be 'thread' or 'process'")
        self.programs: dict[str, CGIProgram] = dict(programs or {})
        self.prefix = prefix
        self.mode = mode
        self.stream_depth = max(1, stream_depth)
        self._seq = 0
        self._callbacks: dict[int, Callable] = {}
        self._streams: dict[int, CGIStreamSource] = {}
        self._workers: dict[str, _Worker] = {}
        self._done_queue: queue.Queue = queue.Queue()
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._closed = False
        self.requests_run = 0

    # -- registration ---------------------------------------------------------

    def register_program(self, name: str, program: CGIProgram) -> None:
        """Add (or replace) an application.  Its worker starts on first use."""
        self.programs[name] = program

    def program_name(self, request: HTTPRequest) -> str:
        """Extract the application name from a dynamic request path."""
        if not request.path.startswith(self.prefix):
            raise NotFoundError(f"not a CGI path: {request.path}")
        name = request.path[len(self.prefix):].split("/", 1)[0]
        if not name or name not in self.programs:
            raise NotFoundError(f"no such CGI program: {name!r}")
        return name

    # -- synchronous execution (MP/MT builds) -----------------------------------

    def run(self, request: HTTPRequest):
        """Run the application for ``request``; body bytes or chunk iterator.

        This blocks the caller until the application finishes (buffered
        programs) or produces its first delivery (streaming programs),
        which is the natural mode for the MP and MT builds where each
        worker handles one request at a time anyway.  A streaming program
        yields a generator of chunks; iterating it paces the application
        through the bounded queue, and closing it cancels the stream.
        """
        name = self.program_name(request)
        worker = self._worker_for(name)
        data = CGIRequestData.from_request(name, request)
        first = worker.run_sync(data)
        self.requests_run += 1
        if isinstance(first, _CGIDone):
            if not first.ok:
                raise RuntimeError(
                    f"CGI program {name!r} failed: {first.error_message}"
                )
            return first.body
        return _drain_stream(first)

    # -- asynchronous execution (SPED/AMPED builds) -------------------------------

    def submit(self, request: HTTPRequest, callback: Callable) -> None:
        """Run the application without blocking; ``callback(result, error)``.

        ``result`` is the body bytes for buffered programs or a
        :class:`CGIStreamSource` for streaming ones.  Completions are
        delivered through :meth:`process_completions`, which the event
        loop invokes when the runner's wakeup channel becomes readable
        (see :meth:`register`).
        """
        try:
            name = self.program_name(request)
        except NotFoundError as exc:
            callback(None, exc)
            return
        worker = self._worker_for(name)
        self._seq += 1
        self._callbacks[self._seq] = callback
        data = CGIRequestData.from_request(name, request)
        worker.run_async(_CGIJob(seq=self._seq, data=data), self._deliver)

    def register(self, loop) -> None:
        """Register the completion channel with an event loop."""
        loop.register(
            self._wakeup_recv,
            EVENT_READ,
            lambda _fileobj, _mask: self.process_completions(),
        )

    def unregister(self, loop) -> None:
        """Remove the completion channel from an event loop."""
        loop.unregister(self._wakeup_recv)

    def process_completions(self) -> int:
        """Invoke callbacks for every finished or progressed request."""
        try:
            try:
                while self._wakeup_recv.recv(4096):
                    pass
            except (BlockingIOError, InterruptedError):
                pass
            processed = 0
            while True:
                try:
                    done = self._done_queue.get_nowait()
                except queue.Empty:
                    break
                processed += 1
                if isinstance(done, _CGIStreamStart):
                    callback = self._callbacks.pop(done.seq, None)
                    self.requests_run += 1
                    source = CGIStreamSource(done.chunks, done.cancel)
                    if callback is None:
                        source.close()
                        continue
                    self._streams[done.seq] = source
                    callback(source, None)
                    continue
                if isinstance(done, _CGIStreamData):
                    source = self._streams.get(done.seq)
                    if source is not None:
                        source.notify_data()
                    continue
                if isinstance(done, _CGIStreamEnd):
                    source = self._streams.pop(done.seq, None)
                    if source is not None:
                        source.notify_data()
                    continue
                callback = self._callbacks.pop(done.seq, None)
                self.requests_run += 1
                if callback is not None:
                    if done.ok:
                        callback(done.body, None)
                    else:
                        callback(None, RuntimeError(done.error_message))
            return processed
        except Exception:
            # Crash barrier (lint rule RL005): runs as a loop readiness
            # callback; a response-callback bug must not kill the loop.
            logger.exception("unhandled error draining CGI completions (absorbed)")
            return 0

    def _deliver(self, done) -> None:
        self._done_queue.put(done)
        try:
            self._wakeup_send.send(b"\0")
        except OSError:
            pass

    # -- lifecycle ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for source in list(self._streams.values()):
            source.close()
        self._streams.clear()
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self._wakeup_recv.close()
        self._wakeup_send.close()

    @property
    def active_workers(self) -> int:
        """Number of application workers currently alive."""
        return len(self._workers)

    def _worker_for(self, name: str) -> "_Worker":
        worker = self._workers.get(name)
        if worker is None:
            program = self.programs[name]
            if self.mode == "thread":
                worker = _ThreadWorker(name, program, self.stream_depth)
            else:
                worker = _ProcessWorker(name, program, self.stream_depth)
            self._workers[name] = worker
        return worker


def _drain_stream(start: _CGIStreamStart):
    """Generator over a stream's bounded queue (blocking-architecture drive)."""
    try:
        while True:
            item = start.chunks.get()
            if isinstance(item, _StreamEnd):
                if item.error_message:
                    raise RuntimeError(f"CGI stream failed: {item.error_message}")
                return
            yield item
    finally:
        start.cancel.set()


class _Worker:
    """Interface of a persistent per-application worker."""

    def run_sync(self, data: CGIRequestData):
        raise NotImplementedError

    def run_async(self, job: _CGIJob, deliver: Callable) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError


def _run_program(
    program: CGIProgram,
    data: CGIRequestData,
    seq: int,
    deliver: Callable,
    stream_depth: int,
    notify_chunks: bool,
) -> None:
    """Execute one application request, buffered or streamed.

    ``notify_chunks`` controls whether per-chunk ``_CGIStreamData`` (and
    final ``_CGIStreamEnd``) markers are delivered: the async path needs
    them to wake the event loop; the sync path reads the chunk queue
    directly and only wants the first delivery.
    """
    try:
        body = program(data)
        if isinstance(body, str):
            body = body.encode("utf-8")
        if isinstance(body, (bytes, bytearray, memoryview)):
            deliver(_CGIDone(seq=seq, ok=True, body=bytes(body)))
            return
    except Exception as exc:  # noqa: BLE001 - worker must survive app errors
        deliver(_CGIDone(seq=seq, ok=False,
                         error_message=f"{type(exc).__name__}: {exc}"))
        return
    chunks: queue.Queue = queue.Queue(maxsize=max(1, stream_depth))
    cancel = threading.Event()
    deliver(_CGIStreamStart(seq=seq, chunks=chunks, cancel=cancel))
    error = ""
    try:
        for chunk in body:
            if isinstance(chunk, str):
                chunk = chunk.encode("utf-8")
            if not len(chunk):
                continue
            if not _put_with_cancel(chunks, bytes(chunk), cancel):
                break
            if notify_chunks:
                deliver(_CGIStreamData(seq=seq))
    except Exception as exc:  # noqa: BLE001 - worker must survive app errors
        error = f"{type(exc).__name__}: {exc}"
    finally:
        closer = getattr(body, "close", None)
        if closer is not None:
            try:
                closer()
            except Exception:  # noqa: BLE001 - generator cleanup is best-effort
                logger.exception("CGI stream generator close failed (absorbed)")
    _put_with_cancel(chunks, _StreamEnd(error), cancel)
    if notify_chunks:
        deliver(_CGIStreamEnd(seq=seq, error_message=error))


class _ThreadWorker(_Worker):
    """Persistent worker thread dedicated to one application."""

    def __init__(self, name: str, program: CGIProgram, stream_depth: int = 8):
        self.name = name
        self.program = program
        self.stream_depth = stream_depth
        self._jobs: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._main, name=f"cgi-{name}", daemon=True
        )
        self._thread.start()

    def _main(self) -> None:
        while True:
            item = self._jobs.get()
            if item is None:
                return
            job, deliver, notify_chunks = item
            _run_program(self.program, job.data, job.seq, deliver,
                         self.stream_depth, notify_chunks)

    def run_sync(self, data: CGIRequestData):
        result_box: queue.Queue = queue.Queue()
        self._jobs.put((_CGIJob(seq=0, data=data), result_box.put, False))
        return result_box.get()

    def run_async(self, job: _CGIJob, deliver: Callable) -> None:
        self._jobs.put((job, deliver, True))

    def stop(self) -> None:
        self._jobs.put(None)
        self._thread.join(timeout=5.0)


class _ProcessWorker(_Worker):
    """Persistent worker process dedicated to one application.

    A small bridging thread reads completions from the process pipe and
    forwards them to the requesting callback, so the asynchronous interface
    matches the thread worker's.  For streaming programs the bridge fills
    the bounded chunk queue: when the queue is full the bridge stops
    reading the pipe, the pipe fills, and the child blocks in its write —
    real OS-level backpressure on the child process.
    """

    def __init__(self, name: str, program: CGIProgram, stream_depth: int = 8):
        self.name = name
        self.stream_depth = stream_depth
        context = multiprocessing.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._parent_conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_process_worker_main,
            args=(child_conn, program),
            name=f"cgi-{name}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()

    def run_sync(self, data: CGIRequestData):
        result_box: queue.Queue = queue.Queue()
        self.run_async(_CGIJob(seq=0, data=data), result_box.put,
                       notify_chunks=False)
        return result_box.get()

    def run_async(self, job: _CGIJob, deliver: Callable,
                  notify_chunks: bool = True) -> None:
        def bridge():
            with self._lock:
                try:
                    self._parent_conn.send((job.seq, job.data))
                except (BrokenPipeError, OSError):
                    deliver(_CGIDone(seq=job.seq, ok=False,
                                     error_message="CGI worker pipe closed"))
                    return
                chunks = cancel = None
                while True:
                    try:
                        _seq, message = self._parent_conn.recv()
                    except (EOFError, OSError):
                        if chunks is None:
                            deliver(_CGIDone(seq=job.seq, ok=False,
                                             error_message="CGI worker died"))
                        else:
                            _put_with_cancel(chunks, _StreamEnd("CGI worker died"),
                                             cancel)
                            if notify_chunks:
                                deliver(_CGIStreamEnd(
                                    seq=job.seq,
                                    error_message="CGI worker died"))
                        return
                    if isinstance(message, _CGIDone):
                        deliver(message)
                        return
                    kind = message[0]
                    if kind == "start":
                        chunks = queue.Queue(maxsize=max(1, self.stream_depth))
                        cancel = threading.Event()
                        deliver(_CGIStreamStart(seq=job.seq, chunks=chunks,
                                                cancel=cancel))
                    elif kind == "chunk":
                        if not _put_with_cancel(chunks, message[1], cancel):
                            continue  # consumer gone: drain child to the end
                        if notify_chunks:
                            deliver(_CGIStreamData(seq=job.seq))
                    elif kind == "end":
                        _put_with_cancel(chunks, _StreamEnd(message[1]), cancel)
                        if notify_chunks:
                            deliver(_CGIStreamEnd(seq=job.seq,
                                                  error_message=message[1]))
                        return

        threading.Thread(target=bridge, daemon=True).start()

    def stop(self) -> None:
        try:
            self._parent_conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
        self._parent_conn.close()


def _process_worker_main(conn, program: CGIProgram) -> None:
    """Entry point of a persistent CGI worker process."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        seq, data = item
        try:
            try:
                body = program(data)
                if isinstance(body, str):
                    body = body.encode("utf-8")
            except Exception as exc:  # noqa: BLE001 - worker must survive app errors
                conn.send((seq, _CGIDone(
                    seq=seq, ok=False,
                    error_message=f"{type(exc).__name__}: {exc}")))
                continue
            if isinstance(body, (bytes, bytearray, memoryview)):
                conn.send((seq, _CGIDone(seq=seq, ok=True, body=bytes(body))))
                continue
            conn.send((seq, ("start",)))
            error = ""
            try:
                for chunk in body:
                    if isinstance(chunk, str):
                        chunk = chunk.encode("utf-8")
                    if len(chunk):
                        conn.send((seq, ("chunk", bytes(chunk))))
            except Exception as exc:  # noqa: BLE001
                error = f"{type(exc).__name__}: {exc}"
            finally:
                closer = getattr(body, "close", None)
                if closer is not None:
                    try:
                        closer()
                    except Exception:  # noqa: BLE001
                        pass
            conn.send((seq, ("end", error)))
        except (BrokenPipeError, OSError):
            return

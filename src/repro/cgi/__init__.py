"""Dynamic content generation (paper Section 5.6).

Flash serves dynamic documents by forwarding the request to an auxiliary
CGI-bin application process over a pipe; the application may be persistent
(like FastCGI) so the cost of creating it is amortized over many requests,
and because it runs outside the server it can block on disk or compute for
arbitrarily long without affecting the server.

:class:`repro.cgi.runner.CGIRunner` reproduces that structure with
persistent worker threads or processes, one per registered application.
"""

from repro.cgi.runner import CGIProgram, CGIRequestData, CGIRunner

__all__ = ["CGIRunner", "CGIProgram", "CGIRequestData"]

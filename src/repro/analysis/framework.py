"""Core machinery for ``repro-lint``: findings, suppressions, modules, rules.

The checker is deliberately a *project* linter, not a general one: every
rule encodes an invariant of this reproduction's architecture (the event
loop must never block; every descriptor must be owned by exactly one
releaser; shared MT state must be lock-guarded).  The framework keeps each
rule small:

* :class:`Finding` — one diagnostic, sortable and JSON-serialisable.
* :class:`SuppressionIndex` — parses ``# repro-lint: allow[RLxxx] -- why``
  comments.  A suppression *must* carry a justification after ``--``; a
  bare allow is itself reported (rule ``RL000``), so the annotations in the
  tree double as a machine-checked inventory of intentional exceptions.
  An allow on (or directly above) a ``def``/``class`` line covers the whole
  body; anywhere else it covers its own line only.
* :class:`ModuleInfo` — path, source, AST, suppressions and the module's
  *domain* (which concurrency world its code runs in), derived from its
  path or overridden with ``# repro-lint: domain=<event|mt|helper|other>``
  near the top of the file.
* :class:`Rule` + :func:`register` — the registry new rules hook into:
  implement ``check_module`` (called per file) or ``check_project``
  (called once with the whole tree in view) and yield findings.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "DOMAIN_EVENT",
    "DOMAIN_HELPER",
    "DOMAIN_MT",
    "DOMAIN_OTHER",
    "Finding",
    "LintError",
    "ModuleInfo",
    "Project",
    "Rule",
    "SuppressionIndex",
    "all_rules",
    "dotted_name",
    "get_rule",
    "iter_functions",
    "register",
]

#: Rule id reserved for the framework itself: a suppression comment whose
#: justification is missing.  It cannot be suppressed.
META_RULE_ID = "RL000"

# -- domains -------------------------------------------------------------------

#: Code that runs on the single-threaded event loop (SPED/AMPED): blocking
#: here stalls every connection at once — the paper's Figure-4 pathology.
DOMAIN_EVENT = "event"
#: Code executed concurrently by MT worker threads (shared address space).
DOMAIN_MT = "mt"
#: Code executed by AMPED helpers / the supervisor (blocking is the job).
DOMAIN_HELPER = "helper"
#: Everything else (clients, experiments, sim, workload...).
DOMAIN_OTHER = "other"

_DOMAINS = frozenset({DOMAIN_EVENT, DOMAIN_MT, DOMAIN_HELPER, DOMAIN_OTHER})

#: Path-suffix → domain classification for the real tree.  Fixtures and new
#: modules can always self-classify with a ``# repro-lint: domain=...``
#: pragma, which wins over this table.
_DOMAIN_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro/core/event_loop.py", DOMAIN_EVENT),
    ("repro/core/timer_wheel.py", DOMAIN_EVENT),
    ("repro/core/connection.py", DOMAIN_EVENT),
    ("repro/core/server.py", DOMAIN_EVENT),
    ("repro/core/send_path.py", DOMAIN_EVENT),
    ("repro/core/pipeline.py", DOMAIN_EVENT),
    ("repro/servers/sped.py", DOMAIN_EVENT),
    ("repro/servers/mt.py", DOMAIN_MT),
    ("repro/servers/blocking.py", DOMAIN_MT),
    ("repro/core/helpers.py", DOMAIN_HELPER),
    ("repro/core/supervisor.py", DOMAIN_HELPER),
)

_DOMAIN_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*domain=(?P<domain>[a-z]+)")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


class LintError(Exception):
    """Unrecoverable checker error (unreadable file, syntax error)."""


# -- findings ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: rule id, location, and a human-oriented message."""

    path: str
    line: int
    rule: str
    message: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# -- suppressions --------------------------------------------------------------


@dataclasses.dataclass
class Suppression:
    """One parsed ``# repro-lint: allow[...]`` comment."""

    line: int
    rules: frozenset
    justification: str
    #: Line span this suppression covers: its own line, widened to a whole
    #: ``def``/``class`` body when anchored to one.
    span: Tuple[int, int] = (0, 0)


class SuppressionIndex:
    """All suppression comments of one module, with their coverage spans.

    Placement rules (documented in docs/ANALYSIS.md):

    * trailing on a code line — covers that line only;
    * on a comment-only line — covers the line directly below it;
    * on a ``def`` / ``class`` line, on the line directly above it, or on
      the line of (or above) its first decorator — covers the whole body.
    """

    def __init__(self, source: str, tree: ast.AST):
        self.suppressions: List[Suppression] = []
        anchors: Dict[int, Tuple[int, int]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                span = (node.lineno, node.end_lineno or node.lineno)
                anchor_lines = {node.lineno}
                if node.decorator_list:
                    anchor_lines.add(node.decorator_list[0].lineno)
                for anchor in anchor_lines:
                    # Keep the widest span per anchor (outer class over its
                    # first method when they share a line — they cannot, but
                    # decorated nested defs can collide).
                    prev = anchors.get(anchor)
                    if prev is None or span[1] - span[0] > prev[1] - prev[0]:
                        anchors[anchor] = span
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover - ast parsed already
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            rules = frozenset(r.strip() for r in match.group("rules").split(","))
            why = (match.group("why") or "").strip()
            span = anchors.get(line) or anchors.get(line + 1)
            if span is None:
                # A comment-only line covers the statement below it; a
                # trailing comment covers its own line.
                alone = tok.line.strip().startswith("#")
                span = (line, line + 1) if alone else (line, line)
            self.suppressions.append(
                Suppression(line=line, rules=rules, justification=why, span=span)
            )

    def covers(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed (with justification) at ``line``."""
        if rule == META_RULE_ID:
            return False
        return any(
            rule in s.rules and s.justification and s.span[0] <= line <= s.span[1]
            for s in self.suppressions
        )

    def unjustified(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.justification]


# -- modules -------------------------------------------------------------------


class ModuleInfo:
    """One parsed source file plus the derived facts every rule needs."""

    def __init__(self, path: Path, display_path: Optional[str] = None):
        self.path = Path(path)
        self.display_path = display_path or self.path.as_posix()
        try:
            self.source = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{self.display_path}: unreadable: {exc}") from exc
        try:
            self.tree = ast.parse(self.source, filename=str(self.path))
        except SyntaxError as exc:
            raise LintError(
                f"{self.display_path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            ) from exc
        self.suppressions = SuppressionIndex(self.source, self.tree)
        self.domain = self._classify_domain()

    def _classify_domain(self) -> str:
        head = "\n".join(self.source.splitlines()[:10])
        match = _DOMAIN_PRAGMA_RE.search(head)
        if match:
            domain = match.group("domain")
            if domain not in _DOMAINS:
                raise LintError(
                    f"{self.display_path}: unknown repro-lint domain {domain!r} "
                    f"(expected one of {sorted(_DOMAINS)})"
                )
            return domain
        posix = self.path.as_posix()
        for suffix, domain in _DOMAIN_SUFFIXES:
            if posix.endswith(suffix):
                return domain
        return DOMAIN_OTHER

    def finding(self, rule: str, line: int, message: str) -> Finding:
        return Finding(path=self.display_path, line=line, rule=rule, message=message)


class Project:
    """The full set of modules a run sees, plus cross-file context."""

    def __init__(self, modules: List[ModuleInfo], docs_text: Optional[str] = None,
                 docs_path: Optional[str] = None):
        self.modules = modules
        #: Text of docs/ARCHITECTURE.md when discoverable (RL004's
        #: documentation check); ``None`` disables that check.
        self.docs_text = docs_text
        self.docs_path = docs_path

    def modules_in_domain(self, domain: str) -> List[ModuleInfo]:
        return [m for m in self.modules if m.domain == domain]

    def find_class(self, name: str) -> Optional[Tuple["ModuleInfo", ast.ClassDef]]:
        """First (module, ClassDef) across the project defining ``name``."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return module, node
        return None


# -- rules ---------------------------------------------------------------------


class Rule:
    """Base class: subclass, set ``id``/``name``/``rationale``, register."""

    id: str = ""
    name: str = ""
    #: One-line architecture rationale, shown by ``--list-rules`` and
    #: expanded in docs/ANALYSIS.md.
    rationale: str = ""

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a rule to the global registry."""
    if not cls.id or cls.id in _REGISTRY:
        raise ValueError(f"rule id missing or duplicate: {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown rule id {rule_id!r} "
                        f"(known: {', '.join(sorted(_REGISTRY))})") from None


# -- shared AST helpers --------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains; None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.AST) -> Iterator[Tuple[ast.AST, Optional[ast.ClassDef]]]:
    """Yield every (function node, enclosing class or None) in the module."""

    def visit(node: ast.AST, cls: Optional[ast.ClassDef]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def name_used(node: ast.AST, name: str) -> bool:
    """Whether ``name`` is read anywhere inside ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )

"""repro-lint: project-specific static analysis + runtime sanitizers.

Static half (``python -m repro.analysis`` / ``repro-lint``): AST rules
RL001–RL005 encoding the reproduction's architecture invariants — no
blocking on the event loop, balanced fd lifecycles, lock discipline,
honest stats counters, exception-safe loop callbacks.  See
docs/ANALYSIS.md for the rule catalogue and annotation syntax.

Runtime half (:mod:`repro.analysis.sanitize`, enabled with
``REPRO_SANITIZE=1``): an fd-leak tracker, a loop-stall watchdog, and a
lock-order recorder that harden the test suite against the same bug
classes dynamically.
"""

from repro.analysis.framework import (
    Finding,
    LintError,
    ModuleInfo,
    Project,
    Rule,
    all_rules,
    get_rule,
    register,
)

__all__ = [
    "Finding",
    "LintError",
    "ModuleInfo",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]

"""RL002 — fd lifecycle balance: every descriptor acquired is released.

The reproduction's whole performance story rides on descriptors: cached
fds pinned by in-flight sendfile responses, mmap chunks pinned by buffered
sends, listen/epoll/pipe descriptors owned by servers and helpers.  A
leaked fd is invisible until the process hits ``EMFILE`` under load —
precisely the overload regime PR 8 hardened — so leak discipline must be
enforced where the leak is written, not where it finally bites.

Per function, the rule tracks names bound to an acquiring call
(``os.open``, ``os.dup``, ``os.pipe``, ``socket.socket()``,
``socket.socketpair``, ``socket.create_connection``) and requires one of:

* **ownership transfer** — the name is returned, yielded, stored on an
  object/container, or passed to another call (a registry such as
  ``CachedFD(fd=...)`` now owns it);
* **release on all exits** — a matching ``os.close(fd)`` / ``obj.close()``
  inside a ``finally`` block;
* **context manager** — acquired by a ``with`` item.

A close that exists but sits on the straight-line path only (not in a
``finally``) is still a finding: any exception between acquire and close
leaks.  Separately, a ``*cache*.acquire(...)`` call (the pinned-resource
caches) must be matched by a ``.release(...)`` in the same function or an
ownership transfer of its result — the fd-cache refcount protocol.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    iter_functions,
    name_used,
    register,
)

#: Calls whose result is a descriptor (or descriptor-bearing object) the
#: caller now owns.  Tuple-returning acquirers bind every tuple element.
ACQUIRING_CALLS = frozenset({
    "os.open",
    "os.dup",
    "os.pipe",
    "os.openpty",
    "socket.socket",
    "socket.socketpair",
    "socket.create_connection",
})


def _finally_spans(func: ast.AST) -> List[Tuple[int, int]]:
    spans = []
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            start = node.finalbody[0].lineno
            end = max(stmt.end_lineno or stmt.lineno for stmt in node.finalbody)
            spans.append((start, end))
    return spans


def _is_close_call(node: ast.Call, name: str) -> bool:
    called = dotted_name(node.func)
    if called == f"{name}.close":
        return True
    return (
        called in ("os.close", "contextlib.closing")
        and any(isinstance(arg, ast.Name) and arg.id == name for arg in node.args)
    )


def _transfers(func: ast.AST, name: str, acquire_line: int) -> bool:
    """Whether ownership of ``name`` visibly leaves the function."""
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if name_used(node.value, name):
                return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            if name_used(node.value, name):
                return True
        elif isinstance(node, ast.Assign):
            if any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in node.targets
            ) and name_used(node.value, name):
                return True
        elif isinstance(node, ast.Call) and not _is_close_call(node, name):
            args = list(node.args) + [kw.value for kw in node.keywords]
            if any(name_used(arg, name) for arg in args):
                return True
    return False


@register
class FdLifecycleRule(Rule):
    id = "RL002"
    name = "fd-lifecycle-balance"
    rationale = (
        "a leaked descriptor is invisible until EMFILE under overload; every "
        "acquire must dominate a close, a registration, or a transfer"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        for func, _cls in iter_functions(module.tree):
            yield from self._check_function(module, func)

    def _check_function(self, module: ModuleInfo, func: ast.AST) -> Iterable[Finding]:
        acquisitions: List[Tuple[str, int]] = []
        cache_pins: List[Tuple[Optional[str], int, str]] = []
        with_lines = set()
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        with_lines.add(item.context_expr.lineno)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                called = dotted_name(node.value.func)
                if called in ACQUIRING_CALLS and node.value.lineno not in with_lines:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            acquisitions.append((target.id, node.lineno))
                        elif isinstance(target, ast.Tuple):
                            acquisitions.extend(
                                (el.id, node.lineno)
                                for el in target.elts
                                if isinstance(el, ast.Name)
                            )
                elif called is not None and self._is_cache_acquire(called):
                    target = node.targets[0]
                    bound = target.id if isinstance(target, ast.Name) else None
                    cache_pins.append((bound, node.lineno, called))
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                called = dotted_name(node.value.func)
                if called in ACQUIRING_CALLS:
                    yield module.finding(
                        self.id, node.lineno,
                        f"result of acquiring call {called}() is discarded: the "
                        "descriptor leaks immediately",
                    )
                elif called is not None and self._is_cache_acquire(called):
                    cache_pins.append((None, node.lineno, called))

        spans = _finally_spans(func)
        for name, line in acquisitions:
            if _transfers(func, name, line):
                continue
            close_lines = [
                node.lineno
                for node in ast.walk(func)
                if isinstance(node, ast.Call) and _is_close_call(node, name)
            ]
            if not close_lines:
                yield module.finding(
                    self.id, line,
                    f"descriptor {name!r} is acquired but never closed, "
                    "registered, or transferred on any path",
                )
            elif not any(
                start <= cl <= end for cl in close_lines for start, end in spans
            ):
                yield module.finding(
                    self.id, line,
                    f"descriptor {name!r} is closed on the straight-line path "
                    "only: an exception between acquire and close leaks it "
                    "(move the close into try/finally or transfer ownership)",
                )

        has_release = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("release", "unpin")
            for node in ast.walk(func)
        )
        for bound, line, called in cache_pins:
            if has_release:
                continue
            if bound is not None and _transfers(func, bound, line):
                continue
            yield module.finding(
                self.id, line,
                f"pinned-cache acquire {called}() has no matching .release() "
                "in this function and its result is not handed off: the pin "
                "(refcount) is never dropped",
            )

    @staticmethod
    def _is_cache_acquire(called: str) -> bool:
        if not called.endswith(".acquire"):
            return False
        receiver = called.rsplit(".", 1)[0].lower()
        return "cache" in receiver

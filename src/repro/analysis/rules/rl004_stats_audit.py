"""RL004 — ServerStats audit: live, documented, and MT-safe counters.

The per-architecture comparison is only as good as its instrumentation:
a ``ServerStats`` field that nothing increments reports a silent zero, a
field missing from docs/ARCHITECTURE.md cannot be interpreted by anyone
reading a BENCH table, and an increment from an MT worker thread outside
the store lock is a lost-update race (``x += 1`` is a read-modify-write
even under the GIL).  One project-wide pass checks all three:

* every int field of ``ServerStats`` is incremented (``+=``) somewhere in
  the tree outside the class itself (``merge`` does not count);
* every field name appears in docs/ARCHITECTURE.md;
* in MT-domain modules every stats increment happens inside a
  ``with <...lock...>:`` block — or carries an ``allow[RL004]``
  annotation justifying the documented stats-slop trade (serialising the
  hot path on the store lock costs more than exact counters are worth).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Tuple

from repro.analysis.framework import (
    DOMAIN_MT,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    register,
)

STATS_CLASS = "ServerStats"


def _int_fields(cls: ast.ClassDef) -> List[Tuple[str, int]]:
    fields = []
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and isinstance(stmt.annotation, ast.Name)
            and stmt.annotation.id == "int"
        ):
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def _lock_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    spans = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = dotted_name(expr)
            if name is not None and "lock" in name.lower():
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


@register
class StatsAuditRule(Rule):
    id = "RL004"
    name = "stats-counter-audit"
    rationale = (
        "an unincremented counter reports a silent zero, an undocumented one "
        "cannot be read, and an unlocked MT increment loses updates"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        located = project.find_class(STATS_CLASS)
        if located is None:
            return
        stats_module, stats_cls = located
        fields = _int_fields(stats_cls)
        if not fields:
            return
        field_names = {name for name, _line in fields}
        cls_span = (stats_cls.lineno, stats_cls.end_lineno or stats_cls.lineno)

        incremented = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Attribute)
                    and node.target.attr in field_names
                ):
                    continue
                if (
                    module is stats_module
                    and cls_span[0] <= node.lineno <= cls_span[1]
                ):
                    continue  # ServerStats.merge folding counters, not an event
                incremented.add(node.target.attr)

        for name, line in fields:
            if name not in incremented:
                yield stats_module.finding(
                    self.id, line,
                    f"ServerStats.{name} is never incremented anywhere in the "
                    "tree: dead counter (remove it or wire it up)",
                )
            if project.docs_text is not None and not re.search(
                rf"\b{re.escape(name)}\b", project.docs_text
            ):
                yield stats_module.finding(
                    self.id, line,
                    f"ServerStats.{name} is not documented in "
                    f"{project.docs_path or 'docs/ARCHITECTURE.md'}",
                )

        for module in project.modules_in_domain(DOMAIN_MT):
            spans = _lock_spans(module.tree)
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Attribute)
                    and node.target.attr in field_names
                ):
                    continue
                if any(start <= node.lineno <= end for start, end in spans):
                    continue
                yield module.finding(
                    self.id, node.lineno,
                    f"stats counter {node.target.attr} incremented from an MT "
                    "worker path without holding a lock: += is a "
                    "read-modify-write and loses updates under contention",
                )

"""Rule modules for ``repro-lint``; importing the package registers them.

Adding a rule is three steps: create ``rlNNN_<slug>.py`` defining a
:class:`~repro.analysis.framework.Rule` subclass under the
:func:`~repro.analysis.framework.register` decorator, import it below,
and add fixtures under ``tests/analysis/fixtures/``.
"""

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    rl001_blocking,
    rl002_fd_lifecycle,
    rl003_lock_discipline,
    rl004_stats_audit,
    rl005_callback_safety,
)

"""RL003 — lock discipline for state shared across concurrency domains.

The tree mixes three worlds: the single-threaded event loop, MT worker
threads, and helper/reaper threads.  An attribute that one method guards
with a lock and another method writes bare is either a data race (MT) or a
latent one (the next PR that moves the caller onto a thread).  The rule
*infers* each class's protected set from the code itself: any attribute
written inside a ``with <lock>:`` block is declared lock-guarded, and
every other write of that attribute in the same class must then also hold
the lock — or carry an ``allow[RL003]`` annotation saying why not (e.g.
"caller already holds self._lock", "single-threaded until start()").

A ``with`` context whose dotted source contains ``lock`` counts as a lock
guard (``self._lock``, ``self._active_lock``, ``self._maybe_lock()`` —
the ContentStore's conditional-lock pattern).  ``__init__`` is exempt:
construction happens-before publication.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    register,
)

#: Methods whose writes are exempt: the object is not yet (or no longer)
#: shared when they run.
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__", "__post_init__"})


def _lock_guard_spans(method: ast.AST) -> List[Tuple[int, int]]:
    """Line spans of ``with <...lock...>:`` bodies inside one method."""
    spans = []
    for node in ast.walk(method):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = dotted_name(expr)
            if name is not None and "lock" in name.lower():
                spans.append((node.lineno, node.end_lineno or node.lineno))
                break
    return spans


def _self_writes(method: ast.AST) -> Iterable[Tuple[str, int]]:
    """(attribute, line) for every ``self.X = ...`` / ``self.X += ...``."""
    for node in ast.walk(method):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, target.lineno


@register
class LockDisciplineRule(Rule):
    id = "RL003"
    name = "lock-discipline"
    rationale = (
        "an attribute guarded by a lock in one method and written bare in "
        "another is a data race once any caller runs off the event loop"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterable[Finding]:
        methods = [
            stmt for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        guarded: Dict[str, str] = {}
        spans_by_method: Dict[str, List[Tuple[int, int]]] = {}
        for method in methods:
            spans = _lock_guard_spans(method)
            spans_by_method[method.name] = spans
            if not spans:
                continue
            for attr, line in _self_writes(method):
                if "lock" in attr.lower():
                    continue
                if any(start <= line <= end for start, end in spans):
                    guarded.setdefault(attr, method.name)
        if not guarded:
            return
        for method in methods:
            if method.name in EXEMPT_METHODS:
                continue
            spans = spans_by_method[method.name]
            for attr, line in _self_writes(method):
                if attr not in guarded:
                    continue
                if any(start <= line <= end for start, end in spans):
                    continue
                yield module.finding(
                    self.id, line,
                    f"attribute self.{attr} is lock-guarded in "
                    f"{cls.name}.{guarded[attr]}() but written here without "
                    "holding the lock",
                )

"""RL001 — no blocking calls on the event-loop thread.

The architecture comparison of the source paper turns on exactly this: a
SPED server that blocks in its one process stalls *every* connection at
once (its Figure-4 pathology), which is why AMPED exports the blocking
steps to helpers.  The reproduction's event-domain modules (``core/``
event-driven code plus the SPED build) must therefore never call a
blocking primitive on a request path — and where they deliberately do
(SPED's inline disk reads are the architecture under measurement), the
site must carry an ``allow[RL001]`` annotation whose justification names
the reason.  The annotations are the machine-checked inventory of the
tree's intentional blocking points.

Checks, within modules whose domain is ``event``:

* ``time.sleep(...)`` — always flagged.
* Builtin ``open(...)``, ``os.open``, ``os.read``, ``os.pread``,
  ``os.stat`` — synchronous disk/metadata I/O; on a cold cache each can
  take a seek.
* Blocking socket methods (``recv``/``send``/``accept``/``connect``
  family) — flagged unless the module puts its sockets in non-blocking
  mode somewhere (``setblocking(False)``); the checker verifies the
  module-level discipline, not per-object dataflow.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    DOMAIN_EVENT,
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    register,
)

#: Calls that perform synchronous disk or clock blocking, by dotted name.
BLOCKING_CALLS = {
    "time.sleep": "time.sleep() stalls every connection the loop owns",
    "open": "builtin open() performs synchronous disk I/O (open(2) can seek)",
    "os.open": "os.open() performs synchronous metadata I/O",
    "os.read": "os.read() performs synchronous disk I/O",
    "os.pread": "os.pread() performs synchronous disk I/O",
    "os.stat": "os.stat() performs synchronous metadata I/O",
}

#: Socket methods that block on a socket left in blocking mode.
BLOCKING_SOCKET_METHODS = frozenset({
    "recv",
    "recv_into",
    "recvfrom",
    "send",
    "sendall",
    "sendto",
    "accept",
    "connect",
    "makefile",
})

#: Receiver-name fragments that make a ``.recv()``/``.send()`` call look
#: like a *socket* call.  Sender objects in the send path also answer to
#: ``send()``; flagging those would be name collision, not analysis.
SOCKETISH_RECEIVERS = ("sock", "client", "conn", "peer", "listener")


def _looks_like_socket(receiver: str) -> bool:
    last = receiver.split(".")[-1].lower()
    return any(marker in last for marker in SOCKETISH_RECEIVERS)


@register
class NoBlockingCallsRule(Rule):
    id = "RL001"
    name = "no-blocking-calls-in-event-loop"
    rationale = (
        "blocking on the event-loop thread stalls every connection at once "
        "(the paper's SPED-on-disk pathology; AMPED exists to prevent it)"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        if module.domain != DOMAIN_EVENT:
            return
        nonblocking_declared = "setblocking(False)" in module.source
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in BLOCKING_CALLS:
                yield module.finding(
                    self.id, node.lineno,
                    f"blocking call {name}() on the event-loop thread: "
                    f"{BLOCKING_CALLS[name]}",
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_SOCKET_METHODS
                and not nonblocking_declared
            ):
                receiver = dotted_name(node.func.value) or "<expr>"
                if not _looks_like_socket(receiver):
                    continue
                yield module.finding(
                    self.id, node.lineno,
                    f"socket call {receiver}.{node.func.attr}() in an event-loop "
                    "module that never calls setblocking(False): a blocking "
                    "socket here stalls the loop",
                )

"""RL005 — event-loop callbacks must not leak arbitrary exceptions.

The event loop dispatches readiness callbacks and timer expiries bare: an
exception that escapes a callback unwinds ``run_once`` and kills the whole
server — every other connection dies with the one that faulted.  PR 2 hit
exactly this as a ``BrokenPipeError`` crash; this rule makes that incident
class a lint.

For every callback registered with the loop or the timer wheel
(``loop.register``/``modify``/``call_soon``/``call_later``,
``wheel.schedule``) that the checker can resolve to a function in the same
module (``self.method``, a module function, a ``lambda:`` wrapping one,
``functools.partial(self.method, ...)``), the callback's body must be a
single ``try`` whose handler catches ``Exception`` (or broader) and does
not unconditionally re-raise.  Callbacks the checker cannot resolve
(attribute chains into other objects) are skipped, not guessed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.analysis.framework import (
    Finding,
    ModuleInfo,
    Project,
    Rule,
    dotted_name,
    register,
)

#: method name → positional index of the callback argument.
REGISTRATION_METHODS = {
    "register": 2,
    "modify": 2,
    "call_soon": 0,
    "call_later": 1,
    "schedule": 1,
}

#: The registration receiver must look like the loop or the wheel.
RECEIVER_MARKERS = ("loop", "wheel")


def _callback_argument(node: ast.Call, method: str) -> Optional[ast.expr]:
    index = REGISTRATION_METHODS[method]
    for kw in node.keywords:
        if kw.arg == "callback":
            return kw.value
    if len(node.args) > index:
        return node.args[index]
    return None


def _qualifying_handler(handler: ast.ExceptHandler) -> bool:
    """Catches Exception or broader, and is not a bare unconditional re-raise."""
    htype = handler.type
    names = []
    if htype is None:
        names = ["BaseException"]
    elif isinstance(htype, ast.Name):
        names = [htype.id]
    elif isinstance(htype, ast.Tuple):
        names = [el.id for el in htype.elts if isinstance(el, ast.Name)]
    if not any(name in ("Exception", "BaseException") for name in names):
        return False
    only_reraise = (
        len(handler.body) == 1
        and isinstance(handler.body[0], ast.Raise)
        and handler.body[0].exc is None
    )
    return not only_reraise


def _is_guarded(func: ast.AST) -> bool:
    body = list(func.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 1 or not isinstance(body[0], ast.Try):
        return False
    return any(_qualifying_handler(h) for h in body[0].handlers)


@register
class CallbackSafetyRule(Rule):
    id = "RL005"
    name = "event-loop-exception-safety"
    rationale = (
        "an exception escaping a registered callback unwinds run_once and "
        "kills every connection at once (the PR-2 BrokenPipeError crash)"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        classes = {
            node: {
                m.name: m
                for m in node.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        functions = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        seen = set()
        for cls, methods in classes.items():
            for node in ast.walk(cls):
                yield from self._check_call(module, node, methods, functions, seen)
        for node in ast.walk(module.tree):
            yield from self._check_call(module, node, {}, functions, seen)

    def _check_call(self, module, node, methods, functions, seen) -> Iterable[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTRATION_METHODS
        ):
            return
        receiver = dotted_name(node.func.value) or ""
        if not any(marker in receiver.lower() for marker in RECEIVER_MARKERS):
            return
        callback = _callback_argument(node, node.func.attr)
        if callback is None:
            return
        resolved = self._resolve(callback, methods, functions)
        if resolved is None:
            return
        key = (resolved.lineno, resolved.name)
        if key in seen:
            return
        seen.add(key)
        if not _is_guarded(resolved):
            yield module.finding(
                self.id, resolved.lineno,
                f"callback {resolved.name}() is registered with the event "
                f"loop/timer wheel (line {node.lineno}) but its body is not "
                "fully guarded by try/except Exception: an escaping exception "
                "kills the loop and every connection it owns",
            )

    def _resolve(self, callback: ast.expr, methods, functions) -> Optional[ast.AST]:
        if isinstance(callback, ast.Attribute):
            if (
                isinstance(callback.value, ast.Name)
                and callback.value.id == "self"
            ):
                return methods.get(callback.attr)
            return None
        if isinstance(callback, ast.Name):
            return functions.get(callback.id)
        if isinstance(callback, ast.Lambda):
            if isinstance(callback.body, ast.Call):
                return self._resolve(callback.body.func, methods, functions)
            return None
        if isinstance(callback, ast.Call):
            called = dotted_name(callback.func)
            if called in ("functools.partial", "partial") and callback.args:
                return self._resolve(callback.args[0], methods, functions)
            return None
        return None

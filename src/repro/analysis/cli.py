"""Command-line front end for ``repro-lint``.

Usage::

    repro-lint [PATHS...] [--format human|json] [--select RL001,RL003]
               [--docs PATH] [--list-rules]

Exit codes: 0 — clean; 1 — findings; 2 — usage or analysis error (syntax
error, unreadable file, unknown rule).

The run collects every ``*.py`` under the given paths (default ``src``),
parses them once, executes all registered rules, drops findings covered by
a justified ``# repro-lint: allow[RLxxx] -- why`` annotation, and reports
unjustified annotations as RL000 — so the suppression inventory itself
stays honest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import rules  # noqa: F401  (registers RL001–RL005)
from repro.analysis.framework import (
    META_RULE_ID,
    Finding,
    LintError,
    ModuleInfo,
    Project,
    all_rules,
    get_rule,
)

#: Documentation file RL004 audits counters against, relative to the repo
#: root (discovered by walking up from the scanned paths).
DOCS_RELPATH = Path("docs") / "ARCHITECTURE.md"


def collect_files(paths: List[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"no such file or directory: {raw}")
    unique = []
    seen = set()
    for path in files:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def discover_docs(paths: List[str]) -> Optional[Path]:
    """docs/ARCHITECTURE.md nearest to the scanned paths, else None.

    Checks the first scanned path itself, then up to three parents — so a
    fixture tree carrying its own ``docs/`` is self-contained while a
    normal ``repro-lint src/`` run finds the repository's copy next to
    ``src``.
    """
    if not paths:
        return None
    start = Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for candidate in [start, *start.parents[:3]]:
        docs = candidate / DOCS_RELPATH
        if docs.is_file():
            return docs
    return None


def run(
    paths: List[str],
    select: Optional[List[str]] = None,
    docs: Optional[Path] = None,
) -> List[Finding]:
    """Run the checker; returns surviving findings (suppressed ones dropped)."""
    modules = [ModuleInfo(path) for path in collect_files(paths)]
    docs_path = docs if docs is not None else discover_docs(paths)
    docs_text = docs_path.read_text(encoding="utf-8") if docs_path else None
    project = Project(
        modules,
        docs_text=docs_text,
        docs_path=str(docs_path) if docs_path else None,
    )
    active = (
        [get_rule(rule_id) for rule_id in select] if select else all_rules()
    )
    by_path = {module.display_path: module for module in modules}
    findings: List[Finding] = []
    for rule in active:
        for module in modules:
            findings.extend(rule.check_module(module, project))
        findings.extend(rule.check_project(project))
    findings = [
        f for f in findings
        if not by_path[f.path].suppressions.covers(f.rule, f.line)
    ]
    for module in modules:
        findings.extend(
            module.finding(
                META_RULE_ID, s.line,
                "suppression without justification: write "
                "'# repro-lint: allow[%s] -- <why>'" % ",".join(sorted(s.rules)),
            )
            for s in module.suppressions.unjustified()
        )
    findings.sort()
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific AST invariant checker (rules RL001-RL005).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--docs", metavar="PATH", type=Path,
        help="ARCHITECTURE.md to audit stats counters against "
             "(default: discovered near the scanned paths)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}")
            print(f"       {rule.rationale}")
        return 0

    select = (
        [rule_id.strip() for rule_id in args.select.split(",") if rule_id.strip()]
        if args.select
        else None
    )
    try:
        findings = run(args.paths, select=select, docs=args.docs)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(
            {
                "version": 1,
                "findings": [f.to_json() for f in findings],
                "count": len(findings),
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            "repro-lint: clean"
            if not findings
            else f"repro-lint: {len(findings)} finding(s)"
        )
        print(summary)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

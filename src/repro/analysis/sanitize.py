"""Runtime sanitizers backing the static rules with dynamic checks.

``repro-lint``'s AST rules prove properties of the *source*; the three
sanitizers here check the corresponding properties of a *running* test
process, so a violation the static analysis cannot see (a leak through a
C extension, a blocking call reached via dynamic dispatch, a lock-order
inversion that only materialises under the MT build) still fails CI.

* :class:`FdTracker` — RL002's runtime twin.  Snapshots ``/proc/self/fd``
  and asserts that a test module leaves no new descriptors behind; an
  ``sys.addaudithook`` ring buffer attributes recent opens so the failure
  message names the call site instead of just a number.
* :class:`LoopStallWatchdog` — RL001's runtime twin.  Hooks the event
  loop's dispatch path (:func:`repro.core.event_loop.add_dispatch_observer`)
  and records any readiness callback that holds the loop longer than a
  threshold.
* :class:`LockOrderRecorder` — RL003's runtime twin.  Wraps
  ``threading.Lock``/``RLock`` construction so every acquisition is
  recorded per thread, building a lock-order graph; a 2-cycle (A taken
  under B on one thread, B under A on another) is a latent deadlock.

Everything here is opt-in: ``conftest.py`` activates it only when
``REPRO_SANITIZE=1`` is set (the CI ``static-analysis`` job does).
"""

from __future__ import annotations

import collections
import gc
import os
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "FdTracker",
    "LockOrderRecorder",
    "LoopStallWatchdog",
    "enabled",
]

#: Environment variable gating the sanitizers.
ENV_VAR = "REPRO_SANITIZE"


def enabled() -> bool:
    """Whether the runtime sanitizers were requested for this process."""
    return os.environ.get(ENV_VAR, "") == "1"


# -- fd leak tracking ----------------------------------------------------------

#: ``/proc/self/fd`` targets that are process plumbing, not test resources:
#: the interpreter's own pipes, tty descriptors, urandom handles...
_IGNORED_FD_PREFIXES = ("pipe:", "anon_inode:", "/dev/")


class FdTracker:
    """Detects file descriptors leaked between two points in time.

    The authoritative signal is a ``/proc/self/fd`` diff — it sees every
    descriptor however it was created.  Because a "leak" may just be an
    object the GC has not collected yet, :meth:`leaked` retries the diff
    across ``gc.collect()`` passes before declaring descriptors leaked.

    An audit hook (`open`, `socket.__new__`, ``os.dup``...) keeps a small
    ring buffer of recent creation sites purely for *attribution*: when a
    leak is real, the report shows where descriptors were last created.
    """

    RING = 64

    def __init__(self) -> None:
        self._recent: collections.deque = collections.deque(maxlen=self.RING)
        self._hook_installed = False
        self._baseline: Dict[int, str] = {}

    # Audit hooks cannot be removed, so the tracker keeps one process-wide
    # hook that only records while ``self._armed``.
    _armed = False

    def install(self) -> None:
        """Install the attribution audit hook (idempotent, irreversible)."""
        if self._hook_installed:
            return
        self._hook_installed = True
        watched = {"open", "socket.__new__", "os.dup", "os.dup2", "os.pipe"}
        reentry = threading.local()

        def hook(event: str, args: tuple) -> None:
            if event not in watched or not FdTracker._armed:
                return
            # Reentrancy guard: collecting the stack must not itself raise
            # audit events (linecache opens source files), and
            # ``lookup_lines=False`` skips those opens in the first place.
            if getattr(reentry, "active", False):
                return
            reentry.active = True
            try:
                stack = traceback.StackSummary.extract(
                    traceback.walk_stack(None), limit=12, lookup_lines=False
                )
                site = next(
                    (
                        f"{frame.filename}:{frame.lineno} in {frame.name}"
                        for frame in stack
                        if "/repro/" in frame.filename.replace(os.sep, "/")
                        and not frame.filename.endswith("sanitize.py")
                    ),
                    None,
                )
                if site is not None:
                    self._recent.append((event, site))
            finally:
                reentry.active = False

        sys.addaudithook(hook)

    @staticmethod
    def _snapshot() -> Dict[int, str]:
        fds: Dict[int, str] = {}
        try:
            entries = os.listdir("/proc/self/fd")
        except OSError:  # pragma: no cover - non-procfs platform
            return fds
        for entry in entries:
            try:
                fd = int(entry)
                target = os.readlink(f"/proc/self/fd/{fd}")
            except (OSError, ValueError):
                continue  # raced with a close; the listing fd itself
            fds[fd] = target
        return fds

    def arm(self) -> None:
        """Record the baseline descriptor set and start attributing."""
        self.install()
        self._recent.clear()
        FdTracker._armed = True
        self._baseline = self._snapshot()

    def leaked(self, retries: int = 5, delay: float = 0.05) -> List[str]:
        """Descriptors present now but not at :meth:`arm` time.

        Retries across ``gc.collect()`` passes so descriptors owned by
        collectable garbage (or closing on a daemon thread) do not count.
        Returns human-oriented ``"fd N -> target"`` strings, annotated
        with recent creation sites when the audit ring has any.
        """
        leaked: Dict[int, str] = {}
        for attempt in range(retries):
            gc.collect()
            current = self._snapshot()
            leaked = {
                fd: target
                for fd, target in current.items()
                if fd not in self._baseline
                and not target.startswith(_IGNORED_FD_PREFIXES)
            }
            if not leaked:
                break
            if attempt + 1 < retries:
                time.sleep(delay)
        FdTracker._armed = False
        if not leaked:
            return []
        lines = [f"fd {fd} -> {target}" for fd, target in sorted(leaked.items())]
        if self._recent:
            lines.append("recent descriptor creation sites:")
            lines.extend(f"  {event} at {site}" for event, site in self._recent)
        return lines


# -- loop stall detection ------------------------------------------------------


class LoopStallWatchdog:
    """Records event-loop readiness callbacks that run longer than allowed.

    The event loop is shared by every connection: a callback that takes
    100 ms delays *all* of them by 100 ms (the paper's case against
    inline blocking).  The watchdog observes every dispatch via the
    loop's observer hook and keeps the worst offenders for the report.
    """

    def __init__(self, threshold: float = 0.25, keep: int = 20) -> None:
        self.threshold = threshold
        self.stalls: List[Tuple[float, str]] = []
        self._keep = keep
        self._installed = False

    def _observe(self, callback, elapsed: float) -> None:
        if elapsed < self.threshold:
            return
        name = getattr(callback, "__qualname__", None) or repr(callback)
        self.stalls.append((elapsed, name))
        self.stalls.sort(reverse=True)
        del self.stalls[self._keep:]

    def install(self) -> None:
        from repro.core.event_loop import add_dispatch_observer

        if not self._installed:
            add_dispatch_observer(self._observe)
            self._installed = True

    def uninstall(self) -> None:
        from repro.core.event_loop import remove_dispatch_observer

        if self._installed:
            remove_dispatch_observer(self._observe)
            self._installed = False

    def report(self) -> List[str]:
        return [
            f"loop callback {name} held the loop for {elapsed * 1000:.0f} ms"
            for elapsed, name in self.stalls
        ]


# -- lock order recording ------------------------------------------------------


class _LockProxy:
    """Delegating wrapper recording acquire/release order per thread."""

    __slots__ = ("_lock", "_site", "_recorder")

    def __init__(self, lock, site: str, recorder: "LockOrderRecorder") -> None:
        self._lock = lock
        self._site = site
        self._recorder = recorder

    def acquire(self, *args, **kwargs):
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._recorder._acquired(self._site)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._recorder._released(self._site)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __getattr__(self, name):
        return getattr(self._lock, name)


class LockOrderRecorder:
    """Builds the runtime lock-order graph and reports 2-cycles.

    Locks are identified by *creation site* (file:line), not identity, so
    one lock per connection still aggregates into a single graph node and
    an inversion between two lock classes is visible even if no single
    pair of instances ever deadlocked during the run.
    """

    def __init__(self) -> None:
        #: Directed edges: (outer_site, inner_site) observed held-nested.
        self.edges: Set[Tuple[str, str]] = set()
        self._held = threading.local()
        self._originals: Optional[Tuple] = None
        self._graph_lock = threading.Lock()

    # - bookkeeping (called from _LockProxy) -

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def _acquired(self, site: str) -> None:
        stack = self._stack()
        with self._graph_lock:
            for outer in stack:
                if outer != site:
                    self.edges.add((outer, site))
        stack.append(site)

    def _released(self, site: str) -> None:
        stack = self._stack()
        # Release order need not mirror acquire order; drop the newest match.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == site:
                del stack[index]
                break

    # - installation -

    def install(self) -> None:
        """Wrap ``threading.Lock``/``RLock`` so new locks are recorded."""
        if self._originals is not None:
            return
        real_lock, real_rlock = threading.Lock, threading.RLock
        self._originals = (real_lock, real_rlock)
        recorder = self

        def creation_site() -> str:
            frame = sys._getframe(2)
            return f"{frame.f_code.co_filename}:{frame.f_lineno}"

        def make_lock():
            return _LockProxy(real_lock(), creation_site(), recorder)

        def make_rlock():
            return _LockProxy(real_rlock(), creation_site(), recorder)

        threading.Lock = make_lock  # type: ignore[misc, assignment]
        threading.RLock = make_rlock  # type: ignore[misc, assignment]

    def uninstall(self) -> None:
        if self._originals is not None:
            threading.Lock, threading.RLock = self._originals  # type: ignore[misc]
            self._originals = None

    def inversions(self) -> List[str]:
        """2-cycles in the order graph: each one is a latent deadlock."""
        found = []
        for outer, inner in sorted(self.edges):
            if outer < inner and (inner, outer) in self.edges:
                found.append(
                    f"lock-order inversion: {outer} and {inner} "
                    f"are nested in both orders"
                )
        return found

"""Disk model: a single disk with positioning time, transfer time and a queue.

The disk is the resource whose handling distinguishes the architectures
(paper Section 4.1): in SPED every disk access stops all user-level
processing and only one access can be outstanding; AMPED can keep one access
outstanding per helper; MP and MT can keep one per process or thread.
Multiple outstanding requests let the disk scheduler reorder them and
recover part of the positioning time — that is the "disk head scheduling"
benefit the paper says SPED cannot obtain.
"""

from __future__ import annotations

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import Resource


class DiskModel:
    """A FIFO disk with seek/transfer service times and scheduling gain."""

    def __init__(self, env: Environment, platform: PlatformProfile):
        self.env = env
        self.platform = platform
        self._resource = Resource(env, capacity=1, name="disk")
        self.reads = 0
        self.bytes_read = 0
        self.busy_time = 0.0

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for or using the disk."""
        return self._resource.queue_length + self._resource.in_use

    def utilization(self) -> float:
        """Fraction of simulated time the disk spent servicing requests."""
        return self.busy_time / self.env.now if self.env.now > 0 else 0.0

    def read(self, size: int):
        """Simulation process: read ``size`` bytes from disk.

        Usage from a server model::

            yield from disk.read(file_size)

        The service time includes average positioning time (reduced when the
        queue is deep enough for the scheduler to sort requests) plus media
        transfer time.
        """
        depth = self.queue_depth + 1
        request = self._resource.request()
        yield request
        service = self.platform.disk_time(size, queue_depth=depth)
        try:
            yield self.env.timeout(service)
        finally:
            self.busy_time += service
            self.reads += 1
            self.bytes_read += size
            self._resource.release(request)

"""Closed-loop simulated clients.

"Each simulated HTTP client makes HTTP requests as fast as the server can
handle them" (paper Section 6): a client issues a request, waits for the
complete response, then immediately issues the next one.  WAN emulation
(Section 6.4) adds a per-client link: the client cannot issue its next
request until its (slow) link has drained the previous response, which is
exactly how long-lived connections tie up server-side resources without
adding server load.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment
from repro.sim.server_models.base import SimulatedServer


class ClosedLoopClient:
    """One simulated client issuing back-to-back requests."""

    def __init__(
        self,
        env: Environment,
        server: SimulatedServer,
        workload,
        client_id: int,
        *,
        keep_alive: bool = False,
        think_time: float = 0.0,
        stop_at: Optional[float] = None,
    ):
        self.env = env
        self.server = server
        self.workload = workload
        self.client_id = client_id
        self.keep_alive = keep_alive
        self.think_time = think_time
        self.stop_at = stop_at
        self.requests_issued = 0
        self.process = env.process(self._run(), name=f"client-{client_id}")

    def _run(self):
        while self.stop_at is None or self.env.now < self.stop_at:
            file_id, size = self.workload.next_request(self.client_id)
            self.requests_issued += 1
            yield from self.server.handle_request(
                self.client_id, file_id, size, keep_alive=self.keep_alive
            )
            # A slow client link keeps the connection (and whatever server
            # resources it pins) occupied while the response drains.
            drain = self.server.network.client_drain_time(size)
            if drain > 0:
                yield self.env.timeout(drain)
            if self.think_time > 0:
                yield self.env.timeout(self.think_time)


def start_clients(
    env: Environment,
    server: SimulatedServer,
    workload,
    num_clients: int,
    *,
    keep_alive: bool = False,
    think_time: float = 0.0,
    stop_at: Optional[float] = None,
    stagger: float = 1e-4,
) -> list[ClosedLoopClient]:
    """Create ``num_clients`` closed-loop clients, slightly staggered in time.

    The stagger avoids every client hitting the server at exactly t=0, which
    would be an artificial burst no real test harness produces.
    """
    clients = []
    for index in range(num_clients):
        def delayed_start(index=index):
            yield env.timeout(index * stagger)
            client = ClosedLoopClient(
                env,
                server,
                workload,
                index,
                keep_alive=keep_alive,
                think_time=think_time,
                stop_at=stop_at,
            )
            clients.append(client)

        env.process(delayed_start(), name=f"client-start-{index}")
    return clients

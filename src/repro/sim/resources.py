"""Resources for the simulation kernel: FIFO and priority servers.

A :class:`Resource` models something with finite capacity that simulation
processes must acquire before proceeding — the CPU, the disk arm, a helper
slot, a worker process.  Requests queue FIFO (or by priority for
:class:`PriorityResource`, used by the Zeus model's small-document
preference).  :class:`Container` models a pooled quantity (bytes of memory)
that processes put and get.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.sim.engine import Environment, Event


class Request(Event):
    """The event returned by :meth:`Resource.request`.

    It triggers when the resource grants the slot.  The holder must call
    :meth:`Resource.release` with this request when done.  Usage::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Attributes
    ----------
    capacity:
        Number of simultaneous holders.
    users:
        Requests currently holding the resource.
    queue_length:
        Requests waiting for the resource.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: list[Request] = []
        self._waiting: list[tuple[float, int, Request]] = []
        self._sequence = 0
        # Utilization accounting.
        self._busy_time = 0.0
        self._last_change = env.now
        self.total_requests = 0

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self._waiting)

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of capacity-time used since the environment started."""
        self._account()
        total = (elapsed if elapsed is not None else self.env.now) * self.capacity
        return self._busy_time / total if total > 0 else 0.0

    def request(self, priority: float = 0.0) -> Request:
        """Ask for one slot; the returned event triggers when granted."""
        self.total_requests += 1
        request = Request(self, priority=priority)
        self._sequence += 1
        if len(self.users) < self.capacity and not self._waiting:
            self._grant(request)
        else:
            heapq.heappush(self._waiting, (self._order_key(priority), self._sequence, request))
        return request

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``."""
        if request not in self.users:
            raise ValueError("release of a request that does not hold the resource")
        self._account()
        self.users.remove(request)
        while self._waiting and len(self.users) < self.capacity:
            _, _, waiter = heapq.heappop(self._waiting)
            self._grant(waiter)

    def _grant(self, request: Request) -> None:
        self._account()
        self.users.append(request)
        request.succeed(request)

    def _order_key(self, priority: float) -> float:
        # FIFO resources ignore priority; subclasses override.
        return 0.0

    def _account(self) -> None:
        now = self.env.now
        self._busy_time += len(self.users) * (now - self._last_change)
        self._last_change = now


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by priority (lower first).

    The Zeus server model uses this to give requests for small documents
    priority over large ones, the behaviour the paper invokes to explain
    Zeus's later cache cliff on FreeBSD (Section 6.2).
    """

    def _order_key(self, priority: float) -> float:
        return priority


class Container:
    """A pooled quantity (e.g. bytes of memory) with blocking gets.

    Only the features the memory model needs: immediate ``put``, and ``get``
    that blocks the calling process until enough quantity is available.
    """

    def __init__(self, env: Environment, capacity: float, initial: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= initial <= capacity:
            raise ValueError("initial level must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.level = initial
        self._waiting: list[tuple[float, Event]] = []

    def put(self, amount: float) -> None:
        """Add ``amount`` to the pool (clamped to capacity) and wake waiters."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self.level = min(self.capacity, self.level + amount)
        self._wake()

    def get(self, amount: float) -> Event:
        """An event that triggers once ``amount`` can be taken from the pool."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.env)
        if self.level >= amount and not self._waiting:
            self.level -= amount
            event.succeed(amount)
        else:
            self._waiting.append((amount, event))
        return event

    def _wake(self) -> None:
        while self._waiting and self._waiting[0][0] <= self.level:
            amount, event = self._waiting.pop(0)
            self.level -= amount
            event.succeed(amount)

"""OS filesystem buffer cache model.

The central memory effect in the paper (Section 4.1, "Memory effects") is
that the server's own memory consumption competes with the filesystem cache:
architectures with a large footprint (MP processes, many MT threads) leave
less room for cached file data, shifting the point where the working set
stops fitting and lowering the hit rate beyond it.  The buffer cache model
therefore exposes an adjustable capacity: the simulated server computes its
footprint and the remainder of physical memory becomes the cache.

Caching granularity is whole files tracked by an LRU list, which matches how
the evaluation reasons about working sets (file-grain locality from the
access traces).
"""

from __future__ import annotations

from repro.cache.lru import LRUCache


class BufferCacheModel:
    """LRU file cache with byte capacity and hit/miss accounting."""

    def __init__(self, capacity_bytes: float):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self._cache: LRUCache[object, int] = LRUCache(
            max_cost=self.capacity_bytes, cost_fn=lambda size: float(size)
        )
        self.hits = 0
        self.misses = 0
        self.bytes_missed = 0

    @property
    def cached_bytes(self) -> float:
        """Bytes of file data currently cached."""
        return self._cache.total_cost

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def resize(self, capacity_bytes: float) -> None:
        """Change the cache capacity (server footprint changed); evicts as needed."""
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self._cache.max_cost = self.capacity_bytes
        self._cache.put("__resize_probe__", 0)
        self._cache.remove("__resize_probe__")

    def access(self, file_id, size: int) -> int:
        """Access ``file_id`` of ``size`` bytes; return the bytes that must come from disk.

        A hit returns 0; a miss returns ``size`` and inserts the file (which
        may evict colder files).  Files larger than the whole cache are never
        retained — every access to them misses, as with a real buffer cache
        being churned by a huge sequential read.
        """
        if size <= 0:
            self.hits += 1
            return 0
        if self._cache.get(file_id) is not None:
            self.hits += 1
            return 0
        self.misses += 1
        self.bytes_missed += size
        if size <= self.capacity_bytes:
            self._cache.put(file_id, size)
        return size

    def contains(self, file_id) -> bool:
        """Whether ``file_id`` is currently cached (does not affect recency)."""
        return self._cache.peek(file_id) is not None

    def warm(self, files) -> None:
        """Pre-load ``files`` (an iterable of ``(file_id, size)``) into the cache."""
        for file_id, size in files:
            if size <= self.capacity_bytes:
                self._cache.put(file_id, size)

    def clear(self) -> None:
        """Drop all cached file data and reset statistics."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.bytes_missed = 0

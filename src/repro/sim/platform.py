"""Platform profiles: the simulated testbed's cost constants.

The paper evaluates every server on two operating systems running on the
same hardware (a 333 MHz Pentium II with 128 MB of memory and multiple
100 Mbit/s Ethernet interfaces).  Two observations from the paper anchor the
profiles below:

* "All servers enjoy substantially higher performance when run under
  FreeBSD as opposed to Solaris … up to 50% lower [on Solaris]" — the
  operating systems differ in per-request and per-byte processing costs,
  not in the hardware; and
* small-file connection rates (Figures 6, 7, 11) put Flash at roughly
  3200–3500 requests/second on FreeBSD and 1100–1200 on Solaris, while
  large cached files saturate at roughly 200+ Mbit/s (FreeBSD) versus
  100–120 Mbit/s (Solaris).

The constants are calibrated so the simulated servers land in those ranges;
what the reproduction cares about — and what the benchmark suite asserts —
is the *relative* behaviour of the architectures, which depends on the
structure of the costs (what blocks, what is replicated per process, what
scales per byte), not on the exact numbers.

All times are in seconds, all sizes in bytes, all rates in bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class PlatformProfile:
    """Cost model of one operating system on the paper's hardware."""

    name: str

    # -- memory ----------------------------------------------------------------
    #: Physical memory of the testbed machine.
    total_memory: int = 128 * MB
    #: Memory consumed by the kernel and unrelated daemons, never available
    #: to the filesystem buffer cache.
    kernel_memory: int = 12 * MB
    #: Fraction of the remaining memory the operating system actually uses
    #: for cached file data (metadata, fragmentation and other kernel pools
    #: claim the rest).  The effective cache of the paper's testbed sits
    #: around 80-90 MB of the 128 MB machine, which is where the figures'
    #: performance cliffs fall.
    buffer_cache_fraction: float = 0.72
    #: Baseline resident size of the server (text, data, one stack).
    server_base_memory: int = 1 * MB
    #: Incremental resident memory per additional server *process* (MP).
    per_process_memory: int = 600 * KB
    #: Incremental resident memory per additional server *thread* (MT).
    per_thread_memory: int = 150 * KB
    #: Incremental memory per AMPED helper process.
    per_helper_memory: int = 100 * KB
    #: Per-connection state (file descriptor, buffers, application record)
    #: for the event-driven architectures.
    per_connection_memory: int = 8 * KB

    # -- per-request CPU costs ----------------------------------------------------
    #: Accepting the connection and tearing it down.
    cost_accept: float = 60e-6
    #: Reading and parsing the HTTP request header.
    cost_parse: float = 50e-6
    #: Pathname translation on a cache miss (multiple stats / directory walk).
    cost_pathname_miss: float = 160e-6
    #: Pathname translation served from the application cache.
    cost_pathname_hit: float = 8e-6
    #: Building an HTTP response header from scratch.
    cost_header_build: float = 60e-6
    #: Reusing a cached response header.
    cost_header_hit: float = 4e-6
    #: Mapping a file (mmap + bookkeeping) on a mapped-file cache miss.
    cost_mmap_miss: float = 90e-6
    #: Reusing an existing file mapping.
    cost_mmap_hit: float = 5e-6
    #: Testing memory residency with mincore (paid by AMPED, not SPED).
    cost_residency_check: float = 12e-6
    #: Fixed cost of the send path (writev and socket bookkeeping).
    cost_send_fixed: float = 40e-6
    #: CPU copy cost per byte transmitted (the dominant cost for large files).
    cost_send_per_byte: float = 33e-9
    #: Multiplier applied to the per-byte cost when the response header is
    #: not aligned (Section 5.5); explains the Zeus anomaly on FreeBSD.
    misaligned_copy_multiplier: float = 1.45
    #: Event-notification overhead per select wakeup (amortized over the
    #: number of ready events, which grows with concurrency — the
    #: "aggregation effect" behind Figure 12's initial rise).
    cost_select_wakeup: float = 45e-6
    #: Additional per-*watched-descriptor* cost a stateless notification
    #: mechanism pays on every wakeup: ``select``/``poll`` hand the kernel
    #: the whole interest set each call and scan the whole answer, so their
    #: wakeup cost grows linearly with open connections even when only one
    #: is ready.  A stateful mechanism (``epoll``) registers interest once
    #: and pays O(ready events) — modelled as zero scan cost.  See
    #: :meth:`event_wakeup_cost`.
    cost_fd_scan: float = 0.4e-6
    #: Scan-cost discount for ``poll`` relative to ``select``: poll walks a
    #: flat pollfd array instead of rebuilding and scanning three fd_set
    #: bitmasks, so its per-descriptor work is smaller.
    poll_scan_factor: float = 0.6

    # -- concurrency costs ------------------------------------------------------------
    #: Process context switch (MP, and AMPED helper handoff).
    cost_process_switch: float = 18e-6
    #: Thread context switch (MT).
    cost_thread_switch: float = 8e-6
    #: Per-request synchronization overhead for shared caches (MT).
    cost_synchronization: float = 12e-6
    #: One IPC round trip between the AMPED server and a helper.
    cost_ipc_roundtrip: float = 25e-6
    #: Creating a new process (CGI fork, MP worker spawn).
    cost_fork: float = 1.2e-3

    # -- disk -------------------------------------------------------------------------
    #: Average positioning time (seek + rotational latency).
    disk_seek_time: float = 9.5e-3
    #: Sequential transfer rate of the disk.
    disk_transfer_rate: float = 14 * MB
    #: Maximum fraction of positioning time that request scheduling can save
    #: when several requests are queued (disk-head scheduling, Section 4.1).
    disk_scheduling_gain: float = 0.45

    # -- network ----------------------------------------------------------------------
    #: Aggregate capacity of the server's network interfaces (bits/second).
    nic_bandwidth_bits: float = 280e6
    #: Per-client link capacity in WAN experiments (bits/second); ``None``
    #: means LAN clients that are never the bottleneck.
    client_link_bits: float | None = None

    def scaled(self, **overrides) -> "PlatformProfile":
        """A copy of the profile with selected fields replaced."""
        return replace(self, **overrides)

    # -- derived helpers -------------------------------------------------------------

    def send_cpu_time(self, size: int, aligned: bool = True) -> float:
        """CPU time to copy ``size`` bytes to the network."""
        per_byte = self.cost_send_per_byte
        if not aligned:
            per_byte *= self.misaligned_copy_multiplier
        return self.cost_send_fixed + per_byte * size

    def nic_time(self, size: int) -> float:
        """Wire time to transmit ``size`` bytes at the NIC's full rate."""
        return (size * 8) / self.nic_bandwidth_bits

    def event_wakeup_cost(self, backend: str, watched_fds: int) -> float:
        """Per-wakeup CPU cost of one event-notification mechanism.

        ``epoll`` models a stateful O(ready-events) mechanism: constant
        ``cost_select_wakeup`` per wakeup, independent of how many
        descriptors are watched (it also matches the profile's original
        calibration, so results for the default backend are unchanged).
        ``select`` adds a scan term linear in ``watched_fds``; ``poll``
        pays the same shape discounted by :attr:`poll_scan_factor`.  This
        is the event-mechanism cost curve the WAN experiment sweeps: as
        long-lived connections accumulate, stateless mechanisms spend an
        ever larger slice of each request's CPU budget re-declaring
        interest in mostly idle descriptors.
        """
        if backend == "epoll":
            return self.cost_select_wakeup
        if backend == "select":
            return self.cost_select_wakeup + self.cost_fd_scan * watched_fds
        if backend == "poll":
            return (
                self.cost_select_wakeup
                + self.cost_fd_scan * self.poll_scan_factor * watched_fds
            )
        raise ValueError(
            f"unknown io backend {backend!r}; expected 'select', 'poll' or 'epoll'"
        )

    def disk_time(self, size: int, queue_depth: int = 1) -> float:
        """Disk service time for a ``size``-byte read with ``queue_depth`` waiting.

        When several requests are queued the disk scheduler sorts them,
        recovering part of the positioning time; SPED can never have more
        than one outstanding request and therefore never benefits.
        """
        gain = 0.0
        if queue_depth > 1:
            # The benefit of sorting requests saturates quickly on a single
            # disk; depths beyond ~8 buy little additional seek reduction.
            effective_depth = min(queue_depth, 8)
            gain = self.disk_scheduling_gain * (1.0 - 1.0 / effective_depth)
        seek = self.disk_seek_time * (1.0 - gain)
        return seek + size / self.disk_transfer_rate


#: FreeBSD 2.2.6 profile: the faster network stack of the two.
FREEBSD = PlatformProfile(name="freebsd")

#: Solaris 2.6 profile: the paper reports up to 50% lower throughput than
#: FreeBSD on identical hardware; per-request and per-byte costs are
#: correspondingly higher.
SOLARIS = PlatformProfile(
    name="solaris",
    cost_accept=170e-6,
    cost_parse=140e-6,
    cost_pathname_miss=380e-6,
    cost_pathname_hit=20e-6,
    cost_header_build=150e-6,
    cost_header_hit=10e-6,
    cost_mmap_miss=220e-6,
    cost_mmap_hit=12e-6,
    cost_residency_check=30e-6,
    cost_send_fixed=110e-6,
    cost_send_per_byte=70e-9,
    # Per-byte costs on Solaris are dominated by its slower network stack,
    # so the *additional* penalty of a misaligned copy is proportionally
    # smaller — which is why the paper's Figure 6 (Solaris) does not show
    # the pronounced Zeus dip that Figure 7 (FreeBSD) does.
    misaligned_copy_multiplier=1.12,
    cost_select_wakeup=110e-6,
    cost_fd_scan=1.0e-6,
    cost_process_switch=30e-6,
    cost_thread_switch=14e-6,
    cost_synchronization=20e-6,
    cost_ipc_roundtrip=55e-6,
    nic_bandwidth_bits=280e6,
)

_PLATFORMS = {"freebsd": FREEBSD, "solaris": SOLARIS}


def get_platform(name: str) -> PlatformProfile:
    """Look up a platform profile by name (case-insensitive)."""
    key = name.lower()
    if key not in _PLATFORMS:
        raise ValueError(f"unknown platform {name!r}; expected one of {sorted(_PLATFORMS)}")
    return _PLATFORMS[key]

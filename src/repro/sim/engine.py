"""Process-oriented discrete-event simulation kernel.

A deliberately small SimPy-like engine: simulation *processes* are Python
generators that ``yield`` events (timeouts, other processes, resource
requests); the :class:`Environment` owns the event queue and advances
simulated time from one scheduled event to the next.  Determinism is
absolute: given the same workload and seeds, every run produces identical
results, which is what lets the benchmark suite assert the paper's
qualitative shapes.

Only the features the server models need are implemented: timeouts,
process-completion events, manual events, and interrupt delivery (used to
stop closed-loop clients at the end of the measurement window).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event starts *untriggered*; :meth:`succeed` (or :meth:`fail`)
    schedules it, after which every waiting process is resumed with the
    event's value (or has the failure exception thrown into it).
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        #: True once the event has been popped from the queue and its
        #: callbacks have run.
        self.processed = False
        self.ok = True
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = True
        self.value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("timeout delay must be non-negative")
        super().__init__(env)
        self.delay = delay
        self.triggered = True
        self.ok = True
        self.value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (its value is the generator's return value), so processes can wait for
    one another simply by yielding them.
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._interrupt: Optional[Interrupt] = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resumption."""
        if self.triggered:
            return
        self._interrupt = Interrupt(cause)
        # Wake the process immediately (detaching it from whatever it waits on).
        wake = Event(self.env)
        wake.succeed()
        wake.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        if self._waiting_on is not None and event is not self._waiting_on and self._interrupt is None:
            # A stale wakeup (e.g. the event we stopped waiting on after an
            # interrupt); ignore it.
            return
        self._waiting_on = None
        try:
            if self._interrupt is not None:
                interrupt, self._interrupt = self._interrupt, None
                target = self.generator.throw(interrupt)
            elif event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self.triggered = True
            self.ok = True
            self.value = stop.value
            self.env._schedule(self)
            return
        except Interrupt:
            # The process chose not to handle the interrupt: terminate it.
            self.triggered = True
            self.ok = True
            self.value = None
            self.env._schedule(self)
            return

        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.triggered and target.processed:
            # The event already fired and ran its callbacks; resume on the
            # next scheduling round to preserve run-to-completion semantics.
            immediate = Event(self.env)
            immediate.succeed(target.value)
            immediate.ok = target.ok
            self._waiting_on = immediate
            immediate.callbacks.append(self._resume)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class Environment:
    """The simulation environment: clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self.processes_started = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    # -- creating events -------------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a simulation process."""
        self.processes_started += 1
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def step(self) -> None:
        """Process the next scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event.processed = True
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue empties or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError("cannot run backwards in time")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def run_all(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain (with a safety cap on event count)."""
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count > max_events:
                raise RuntimeError("simulation exceeded the maximum event count")


def all_of(env: Environment, events: Iterable[Event]) -> Event:
    """An event that triggers once every event in ``events`` has triggered."""
    events = list(events)
    result = env.event()
    remaining = {"count": len(events)}
    if not events:
        result.succeed([])
        return result
    values: list[Any] = [None] * len(events)

    def make_callback(index: int):
        def callback(event: Event) -> None:
            values[index] = event.value
            remaining["count"] -= 1
            if remaining["count"] == 0 and not result.triggered:
                result.succeed(values)

        return callback

    for index, event in enumerate(events):
        if event.triggered and event.processed:
            values[index] = event.value
            remaining["count"] -= 1
        else:
            event.callbacks.append(make_callback(index))
    if remaining["count"] == 0 and not result.triggered:
        result.succeed(values)
    return result

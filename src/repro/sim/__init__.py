"""Deterministic discrete-event simulation of the paper's testbed.

The original evaluation ran on a 333 MHz Pentium II with 128 MB of memory,
multiple 100 Mbit/s Ethernet interfaces and late-1990s SCSI disks, under
Solaris 2.6 and FreeBSD 2.2.6 — hardware and operating systems that are not
available, and whose performance ratios cannot be reproduced meaningfully by
timing Python socket servers on modern machines.  The simulation layer
replaces that testbed with an explicit model of the quantities the paper's
arguments actually rest on:

* a single **CPU** with per-request and per-byte costs (platform profiles
  for "Solaris" and "FreeBSD" differ in these constants),
* a **disk** with seek and transfer time and a FIFO queue,
* an OS **buffer cache** whose capacity is what remains of main memory after
  the server's own footprint,
* a **network interface** with finite bandwidth, plus per-client WAN links,
* **execution contexts** (the single SPED/AMPED process, AMPED helpers, MP
  processes, MT threads) that block on disk and pay context-switch and
  synchronization costs,
* the **application-level caches** of Section 5 as hit/miss models that
  modulate per-request CPU cost.

Server models for AMPED (Flash), SPED, MP, MT, an Apache-like MP server and
a Zeus-like SPED server are built on this substrate in
:mod:`repro.sim.server_models`, and every figure of the paper's evaluation
is regenerated from them by :mod:`repro.experiments`.
"""

from repro.sim.engine import Environment, Interrupt, Process, Timeout
from repro.sim.resources import Container, PriorityResource, Resource
from repro.sim.platform import FREEBSD, SOLARIS, PlatformProfile, get_platform
from repro.sim.disk import DiskModel
from repro.sim.buffer_cache import BufferCacheModel
from repro.sim.network import NetworkModel
from repro.sim.appcache import SimulatedAppCaches
from repro.sim.metrics import MetricsCollector

__all__ = [
    "Environment",
    "Process",
    "Timeout",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "Container",
    "PlatformProfile",
    "SOLARIS",
    "FREEBSD",
    "get_platform",
    "DiskModel",
    "BufferCacheModel",
    "NetworkModel",
    "SimulatedAppCaches",
    "MetricsCollector",
]

"""One-call simulation runner used by the experiments and benchmarks.

:func:`run_simulation` wires together a platform profile, a workload, a
server model and a population of closed-loop clients, runs the simulation
for a warm-up period plus a measurement window, and returns a
:class:`SimulationResult` with the two metrics the paper reports (output
bandwidth and connection rate) plus supporting detail (cache hit rate, disk
and NIC utilization, memory footprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.appcache import AppCacheConfig
from repro.sim.client_model import start_clients
from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile, get_platform
from repro.sim.server_models import create_model
from repro.sim.server_models.base import SimServerConfig


@dataclass
class SimulationResult:
    """Outcome of one simulated benchmark run."""

    architecture: str
    platform: str
    num_clients: int
    bandwidth_mbps: float
    request_rate: float
    requests: int
    mean_response_time: float
    buffer_cache_hit_rate: float
    disk_utilization: float
    nic_utilization: float
    memory_footprint: int
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat dictionary (for tables and CSV-ish output)."""
        data = {
            "architecture": self.architecture,
            "platform": self.platform,
            "num_clients": self.num_clients,
            "bandwidth_mbps": round(self.bandwidth_mbps, 3),
            "request_rate": round(self.request_rate, 2),
            "requests": self.requests,
            "mean_response_time": round(self.mean_response_time, 6),
            "buffer_cache_hit_rate": round(self.buffer_cache_hit_rate, 4),
            "disk_utilization": round(self.disk_utilization, 4),
            "nic_utilization": round(self.nic_utilization, 4),
            "memory_footprint": self.memory_footprint,
        }
        data.update(self.extra)
        return data


def run_simulation(
    architecture: str,
    workload,
    *,
    platform: str | PlatformProfile = "freebsd",
    num_clients: int = 64,
    duration: float = 4.0,
    warmup: float = 1.0,
    num_workers: int = 32,
    num_helpers: int = 8,
    app_caches: Optional[AppCacheConfig] = None,
    persistent_connections: bool = False,
    client_link_bits: Optional[float] = None,
    think_time: float = 0.0,
    warm_buffer_cache: bool = True,
    io_backend: str = "epoll",
    server_kwargs: Optional[dict] = None,
) -> SimulationResult:
    """Run one simulated benchmark and return its result.

    Parameters mirror the knobs the paper's experiments turn: the server
    architecture, the operating system ("platform"), the workload, the
    number of concurrent clients, and whether connections are persistent
    (the WAN experiment).  ``warm_buffer_cache`` pre-loads the hottest
    documents that fit in the cache so the measurement window reflects the
    steady state rather than a cold cache (the paper's runs are long enough
    that cold-start effects vanish; the simulation shortcuts that).
    """
    profile = platform if isinstance(platform, PlatformProfile) else get_platform(platform)
    env = Environment()
    config = SimServerConfig(
        num_workers=num_workers,
        num_helpers=num_helpers,
        app_caches=app_caches or AppCacheConfig(),
        persistent_connections=persistent_connections,
        client_link_bits=client_link_bits,
        io_backend=io_backend,
    )
    server = create_model(
        architecture,
        env,
        profile,
        config,
        num_connections=num_clients,
        **(server_kwargs or {}),
    )

    if warm_buffer_cache and hasattr(workload, "hottest_files"):
        server.buffer_cache.warm(
            workload.hottest_files(int(server.buffer_cache.capacity_bytes))
        )
    elif warm_buffer_cache and hasattr(workload, "files"):
        server.buffer_cache.warm(workload.files)

    server.metrics.measure_from = warmup
    end_time = warmup + duration
    start_clients(
        env,
        server,
        workload,
        num_clients,
        keep_alive=persistent_connections,
        think_time=think_time,
        stop_at=end_time,
    )
    env.run(until=end_time)

    metrics = server.metrics
    summary = server.summary()
    return SimulationResult(
        architecture=server.architecture,
        platform=profile.name,
        num_clients=num_clients,
        bandwidth_mbps=metrics.bandwidth_mbps,
        request_rate=metrics.request_rate,
        requests=metrics.requests,
        mean_response_time=metrics.mean_response_time,
        buffer_cache_hit_rate=summary["buffer_cache_hit_rate"],
        disk_utilization=summary["disk_utilization"],
        nic_utilization=summary["nic_utilization"],
        memory_footprint=summary["memory_footprint"],
        extra={
            "helper_dispatches": summary.get("helper_dispatches", 0),
            "io_backend": io_backend,
        },
    )

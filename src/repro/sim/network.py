"""Network model: shared server NIC plus optional per-client WAN links.

The testbed connects the server to the client machines through switched
Fast Ethernet; the server has multiple 100 Mbit/s interfaces, so the
aggregate NIC capacity — not a single link — is the relevant bound.  The
WAN experiment (Section 6.4) emulates slow, long-lived client connections;
in the simulation those become per-client link rates, which stretch the time
a response occupies server-side connection state without consuming NIC
capacity for longer.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import Resource


class NetworkModel:
    """Transmission-time model for server responses."""

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        client_link_bits: Optional[float] = None,
    ):
        self.env = env
        self.platform = platform
        self.client_link_bits = (
            client_link_bits if client_link_bits is not None else platform.client_link_bits
        )
        self._nic = Resource(env, capacity=1, name="nic")
        self.bytes_transmitted = 0
        self.transmissions = 0
        self.busy_time = 0.0

    def utilization(self) -> float:
        """Fraction of simulated time the NIC spent transmitting."""
        return self.busy_time / self.env.now if self.env.now > 0 else 0.0

    def transmit(self, size: int):
        """Simulation process: push ``size`` bytes through the server NIC.

        The NIC is modeled as a FIFO server at the aggregate interface rate.
        The caller (server model) decides whether its execution context waits
        for the transmission (blocking write in MP/MT once socket buffers
        fill) or continues immediately (event-driven architectures).
        """
        if size <= 0:
            return
        request = self._nic.request()
        yield request
        service = self.platform.nic_time(size)
        try:
            yield self.env.timeout(service)
        finally:
            self.busy_time += service
            self.bytes_transmitted += size
            self.transmissions += 1
            self._nic.release(request)

    def client_drain_time(self, size: int) -> float:
        """Extra time a slow client link needs to drain ``size`` bytes.

        Returns 0 for LAN clients.  For WAN clients this is the additional
        connection lifetime beyond the server-side transmission, during
        which per-connection server resources stay committed.
        """
        if not self.client_link_bits:
            return 0.0
        return (size * 8) / self.client_link_bits

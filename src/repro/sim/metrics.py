"""Measurement collection for simulation runs.

The paper reports two primary metrics: total output bandwidth (Mbit/s) and
connection rate (requests/second).  The collector supports a warm-up period
— counters only accumulate once the measurement window opens — because the
interesting steady state (caches warm, all clients active) takes a little
simulated time to reach, exactly as in real benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MetricsCollector:
    """Accumulates per-request measurements inside the measurement window."""

    #: Simulated time at which measurement starts (warm-up ends).
    measure_from: float = 0.0
    requests: int = 0
    bytes_sent: int = 0
    errors: int = 0
    disk_reads: int = 0
    response_time_total: float = 0.0
    response_time_max: float = 0.0
    _window_end: float = field(default=0.0, repr=False)

    def record(
        self,
        now: float,
        size: int,
        response_time: float,
        *,
        from_disk: bool = False,
        error: bool = False,
    ) -> None:
        """Record one completed request at simulated time ``now``."""
        if now < self.measure_from:
            return
        self._window_end = max(self._window_end, now)
        if error:
            self.errors += 1
            return
        self.requests += 1
        self.bytes_sent += size
        self.response_time_total += response_time
        self.response_time_max = max(self.response_time_max, response_time)
        if from_disk:
            self.disk_reads += 1

    @property
    def window(self) -> float:
        """Length of the measurement window observed so far."""
        return max(0.0, self._window_end - self.measure_from)

    @property
    def bandwidth_mbps(self) -> float:
        """Output bandwidth in megabits per second."""
        if self.window <= 0:
            return 0.0
        return (self.bytes_sent * 8) / (self.window * 1_000_000)

    @property
    def request_rate(self) -> float:
        """Completed requests per second."""
        if self.window <= 0:
            return 0.0
        return self.requests / self.window

    @property
    def mean_response_time(self) -> float:
        """Average response time of measured requests (seconds)."""
        return self.response_time_total / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """Plain-dict summary for experiment tables."""
        return {
            "requests": self.requests,
            "bytes_sent": self.bytes_sent,
            "errors": self.errors,
            "disk_reads": self.disk_reads,
            "bandwidth_mbps": self.bandwidth_mbps,
            "request_rate": self.request_rate,
            "mean_response_time": self.mean_response_time,
        }

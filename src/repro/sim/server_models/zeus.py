"""Simulated Zeus-like server (the paper's external SPED reference point).

Zeus v1.30 is a high-performance SPED server.  Three behaviours the paper
calls out are modeled on top of the SPED substrate:

* **Near-Flash efficiency.**  Zeus is aggressively optimized; the model
  keeps the application caches but adds a small per-request cost relative
  to Flash-SPED, leaving it between Flash and the MP/MT builds on cached
  workloads (Figures 6 and 7).
* **Unaligned response headers.**  Zeus does not pad its response headers
  to the 32-byte boundary, so whenever the header length happens to be
  misaligned the kernel performs misaligned copies of the whole response.
  The header length varies with the number of digits in ``Content-Length``,
  which is why the anomaly appears for a band of file sizes (the 100 KB+
  dip on FreeBSD, Figure 7).
* **Small-document priority.**  "Zeus's request handling appears to give
  priority to requests for small documents.  Under full load this tends to
  starve requests for large documents and thus causes the server to process
  a somewhat smaller effective working set" — which is why its throughput
  drops later than the other servers as the data set grows (Figure 9).  The
  model orders CPU admission by document size, so under overload small
  documents dominate the request mix and the effective working set shrinks.
* **Multi-process configuration.**  For the real-workload tests Zeus runs
  two SPED processes as advised by the vendor, so up to two disk operations
  can be outstanding and one process keeps serving while the other blocks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import PriorityResource, Resource
from repro.sim.server_models.base import RESPONSE_HEADER_BYTES, SimServerConfig, SimulatedServer

#: Extra per-request CPU of Zeus relative to Flash-SPED (it lacks a few of
#: Flash's micro-optimizations but is in the same class).
ZEUS_EXTRA_CPU_FREEBSD = 18e-6
ZEUS_EXTRA_CPU_SOLARIS = 45e-6

#: Length of Zeus's fixed response-header fields; the total header length is
#: this plus the number of digits in Content-Length, and the response is
#: misaligned whenever that total is not a multiple of 32.  With 123 fixed
#: bytes, five-digit lengths (10-99 KB files) happen to be aligned while
#: six-digit lengths (100 KB and above) are not — which is where Figure 7
#: shows the Zeus anomaly.
ZEUS_HEADER_BASE_LENGTH = 123


class ZeusModel(SimulatedServer):
    """Zeus v1.30 stand-in: optimized SPED with vendor quirks."""

    architecture = "zeus"
    uses_worker_pool = False

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
        num_processes: int = 1,
    ):
        config = config or SimServerConfig()
        extra = (
            ZEUS_EXTRA_CPU_SOLARIS if platform.name == "solaris" else ZEUS_EXTRA_CPU_FREEBSD
        )
        config = replace(
            config,
            extra_per_request_cpu=config.extra_per_request_cpu + extra,
            header_aligned=False,
        )
        #: Number of SPED processes (1 for the synthetic tests, 2 for the
        #: real-workload tests, per the vendor's advice).  Set before the
        #: base constructor runs because the memory footprint depends on it.
        self.num_processes = max(1, num_processes)
        super().__init__(env, platform, config, num_connections)
        # Replace the plain CPU queue with a priority queue so that small
        # documents are admitted first under load.
        self.cpu = PriorityResource(env, capacity=1, name="zeus-cpu")
        # Each SPED process can have one blocking disk operation outstanding.
        self._process_slots = Resource(env, capacity=self.num_processes, name="zeus-procs")

    def memory_footprint(self) -> int:
        return (
            self.platform.server_base_memory * self.num_processes
            + self.platform.per_connection_memory * self.num_connections
        )

    # -- small-document priority ----------------------------------------------------

    def use_cpu_priority(self, duration: float, priority: float):
        if duration <= 0:
            return
        request = self.cpu.request(priority=priority)
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            self.cpu.release(request)

    def handle_request(self, client_id: int, file_id, size: int, keep_alive: bool = False):
        """Serve one request, admitting small documents ahead of large ones."""
        self.requests_started += 1
        start = self.env.now
        from_disk = False
        priority = float(size)

        outcome = self.app_cache_lookup(0, file_id, size)
        cpu_time = self._request_cpu_time(outcome, keep_alive=keep_alive)
        yield from self.use_cpu_priority(cpu_time, priority)

        missing = self.buffer_cache.access(file_id, size)
        if missing > 0:
            from_disk = True
            yield from self.disk_read_with_priority(missing, priority)

        send_cpu = self.platform.send_cpu_time(
            size + RESPONSE_HEADER_BYTES, aligned=self._response_aligned(size)
        )
        yield from self.use_cpu_priority(send_cpu, priority)

        wire_bytes = size + RESPONSE_HEADER_BYTES
        yield from self.network.transmit(wire_bytes)

        self.metrics.record(
            self.env.now, wire_bytes, self.env.now - start, from_disk=from_disk
        )
        return wire_bytes, from_disk

    def disk_read_with_priority(self, size: int, priority: float):
        """Blocking read performed by one of the (at most two) SPED processes.

        While a process performs the read it cannot serve other requests; the
        other process (if configured) continues.  With a single process this
        degenerates to SPED's behaviour of stalling everything, which the
        model realizes by making the lone process slot gate all CPU use.
        """
        slot = self._process_slots.request()
        yield slot
        try:
            if self.num_processes == 1:
                # Single-process Zeus behaves exactly like SPED: the blocking
                # read occupies the CPU.
                cpu_token = self.cpu.request(priority=priority)
                yield cpu_token
                try:
                    yield from self.disk.read(size)
                finally:
                    self.cpu.release(cpu_token)
            else:
                yield from self.disk.read(size)
        finally:
            self._process_slots.release(slot)

    def disk_read(self, size: int):  # pragma: no cover - superseded by priority path
        yield from self.disk_read_with_priority(size, priority=float(size))

    # -- alignment anomaly ---------------------------------------------------------------

    def _response_aligned(self, size: int) -> bool:
        header_length = ZEUS_HEADER_BASE_LENGTH + len(str(size))
        return header_length % 32 == 0

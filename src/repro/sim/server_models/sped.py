"""Simulated SPED server (paper Section 3.3, Figure 4).

A single event-driven process performs all client processing *and* all disk
activity.  Because supposedly non-blocking file reads actually block on the
operating systems of the study, a disk access stops every other request:
in the model, the disk read is performed while holding the CPU, so nothing
else can be processed until the read completes — and only one disk request
can ever be outstanding, so SPED gets no benefit from disk-head scheduling
or multiple disks (Section 4.1).
"""

from __future__ import annotations

from repro.sim.server_models.base import SimulatedServer


class SPEDModel(SimulatedServer):
    """Flash-SPED: fastest on cached content, collapses when the disk is hot."""

    architecture = "sped"
    uses_worker_pool = False

    def memory_footprint(self) -> int:
        # One process, one stack: "the SPED architecture has small memory
        # requirements" — just the base image plus per-connection state.
        return (
            self.platform.server_base_memory
            + self.platform.per_connection_memory * self.num_connections
        )

    def disk_read(self, size: int):
        """Read from disk while holding the CPU: all processing stops."""
        cpu_token = self.cpu.request()
        yield cpu_token
        try:
            yield from self.disk.read(size)
        finally:
            self.cpu.release(cpu_token)

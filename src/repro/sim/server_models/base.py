"""Shared cost substrate for the simulated server architectures.

Every simulated server processes the same abstract request lifecycle — the
basic steps of the paper's Figure 1 — against the same resources (one CPU,
one disk, an OS buffer cache sized by what the server's footprint leaves
free, and the NIC).  The architectures differ *only* in the hooks:

* how many execution contexts exist and whether a request must hold one for
  its lifetime (:meth:`SimulatedServer.acquire_context`),
* what happens when a request needs disk data
  (:meth:`SimulatedServer.disk_read`): SPED holds the CPU hostage, AMPED
  hands the wait to a helper, MP/MT block only their own context,
* which per-request overheads apply (synchronization for MT, context
  switches for MP, IPC and residency checks for AMPED),
* how large the server's memory footprint is, which determines how much of
  main memory remains for the filesystem cache
  (:meth:`SimulatedServer.memory_footprint`).

This is a direct encoding of the qualitative comparison in Section 4 of the
paper; the evaluation figures emerge from running closed-loop clients
against these models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.appcache import AppCacheConfig, AppCacheOutcome, SimulatedAppCaches
from repro.sim.buffer_cache import BufferCacheModel
from repro.sim.disk import DiskModel
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkModel
from repro.sim.platform import MB, PlatformProfile
from repro.sim.resources import Resource

#: Approximate size of an HTTP response header on the wire.
RESPONSE_HEADER_BYTES = 256


@dataclass
class SimServerConfig:
    """Architecture-independent knobs of a simulated server."""

    #: Worker processes (MP) or threads (MT); ignored by SPED/AMPED.
    num_workers: int = 32
    #: Helper processes for AMPED ("enough to keep the disk busy").
    num_helpers: int = 8
    #: Application-level cache configuration (Section 5 optimizations).
    app_caches: AppCacheConfig = field(default_factory=AppCacheConfig)
    #: Whether clients hold persistent connections; a worker-per-request
    #: architecture must then dedicate a worker per *connection*, which is
    #: the mechanism behind Figure 12's MP/MT decline.
    persistent_connections: bool = False
    #: Response headers padded to the alignment boundary (Section 5.5).
    header_aligned: bool = True
    #: Pay the mincore residency-test cost per request (AMPED only).
    residency_check: bool = False
    #: Additional per-request CPU cost, used by the Apache model to reflect
    #: its lack of the aggressive optimizations beyond caching.
    extra_per_request_cpu: float = 0.0
    #: Multiplier on the per-byte send cost.  A server that does not use
    #: memory-mapped files copies the data an extra time (read into a user
    #: buffer, then write to the socket); the Apache model sets this > 1.
    per_byte_multiplier: float = 1.0
    #: Per-client WAN link rate in bits/second (None = LAN).
    client_link_bits: Optional[float] = None
    #: Event-notification mechanism the simulated server uses: ``"epoll"``
    #: (stateful, O(ready) — the default, matching the original profile
    #: calibration), ``"select"`` or ``"poll"`` (stateless: wakeup cost
    #: grows with the number of watched descriptors).  See
    #: :meth:`repro.sim.platform.PlatformProfile.event_wakeup_cost`.
    io_backend: str = "epoll"

    def with_caches(self, *, pathname: bool = True, mmap: bool = True, header: bool = True) -> "SimServerConfig":
        """A copy with the given cache combination (Figure 11 variants)."""
        caches = replace(
            self.app_caches,
            enable_pathname=pathname,
            enable_mmap=mmap,
            enable_header=header,
        )
        return replace(self, app_caches=caches)


class SimulatedServer:
    """Base class: request lifecycle over shared resources.

    Parameters
    ----------
    env:
        The simulation environment.
    platform:
        Cost constants of the simulated operating system ("solaris" or
        "freebsd" profile).
    config:
        Architecture-independent knobs.
    num_connections:
        Number of concurrent client connections the experiment will apply;
        needed up front because the memory footprint (and therefore the
        buffer cache size) depends on it for some architectures.
    """

    #: Architecture label ("sped", "amped", "mp", "mt", "apache", "zeus").
    architecture = "base"
    #: Whether a request must hold a worker context for its whole lifetime.
    uses_worker_pool = False

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
    ):
        self.env = env
        self.platform = platform
        self.config = config or SimServerConfig()
        self.num_connections = num_connections

        self.cpu = Resource(env, capacity=1, name="cpu")
        self.disk = DiskModel(env, platform)
        self.network = NetworkModel(env, platform, client_link_bits=self.config.client_link_bits)

        footprint = self.memory_footprint()
        available = (
            platform.total_memory - platform.kernel_memory - footprint
        ) * platform.buffer_cache_fraction
        self.buffer_cache = BufferCacheModel(max(2 * MB, available))

        self.metrics = MetricsCollector()
        self.workers = self._make_worker_pool()
        self._app_caches = self._make_app_caches()
        self.requests_started = 0

    # -- architecture hooks --------------------------------------------------------

    def memory_footprint(self) -> int:
        """Resident memory of the server, subtracted from the buffer cache.

        The base implementation covers the event-driven architectures: one
        process plus per-connection state.  Worker-pool architectures
        override this to add per-process/per-thread overheads.
        """
        return (
            self.platform.server_base_memory
            + self.platform.per_connection_memory * self.num_connections
        )

    def _make_worker_pool(self) -> Optional[Resource]:
        """The pool of execution contexts a request must hold (MP/MT only)."""
        return None

    def _make_app_caches(self):
        """Application caches: one shared set by default (SPED/AMPED/MT)."""
        return SimulatedAppCaches(self.config.app_caches)

    def app_cache_lookup(self, worker_index: int, file_id, size: int) -> AppCacheOutcome:
        """Consult the application caches for this request."""
        return self._app_caches.lookup(file_id, size)

    def architecture_request_overhead(self, outcome: AppCacheOutcome) -> float:
        """Extra per-request CPU specific to the architecture (switches, locks, IPC)."""
        return 0.0

    def disk_read(self, size: int):
        """Simulation process: obtain ``size`` bytes from disk.

        The base implementation is the MP/MT behaviour: the calling context
        blocks (it holds no shared resource while waiting) and pays a
        context-switch on the way out and back.  SPED and AMPED override.
        """
        yield from self.use_cpu(self.blocking_switch_cost())
        yield from self.disk.read(size)
        yield from self.use_cpu(self.blocking_switch_cost())

    def blocking_switch_cost(self) -> float:
        """CPU cost of suspending/resuming this architecture's context."""
        return 0.0

    # -- resource helpers -----------------------------------------------------------

    def use_cpu(self, duration: float):
        """Simulation process: consume ``duration`` seconds of CPU."""
        if duration <= 0:
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(duration)
        finally:
            self.cpu.release(request)

    def acquire_context(self):
        """Simulation process: obtain a worker context (no-op if none needed)."""
        if self.workers is None:
            return None
        request = self.workers.request()
        yield request
        return request

    def release_context(self, token) -> None:
        """Return a previously acquired worker context."""
        if self.workers is not None and token is not None:
            self.workers.release(token)

    # -- the request lifecycle -----------------------------------------------------------

    def handle_request(self, client_id: int, file_id, size: int, keep_alive: bool = False):
        """Simulation process: serve one request end to end.

        Returns ``(bytes_on_wire, from_disk)`` so the closed-loop client can
        record metrics (the server also records them itself).
        """
        self.requests_started += 1
        start = self.env.now
        worker_index = self.requests_started % max(1, self.config.num_workers)
        token = yield from self.acquire_context()
        from_disk = False
        try:
            outcome = self.app_cache_lookup(worker_index, file_id, size)
            cpu_time = self._request_cpu_time(outcome, keep_alive=keep_alive)
            yield from self.use_cpu(cpu_time)

            missing = self.buffer_cache.access(file_id, size)
            if missing > 0:
                from_disk = True
                yield from self.disk_read(missing)

            send_cpu = self.platform.send_cpu_time(
                size + RESPONSE_HEADER_BYTES, aligned=self._response_aligned(size)
            ) * self.config.per_byte_multiplier
            yield from self.use_cpu(send_cpu)

            # The response occupies the NIC for its wire time.  Worker-pool
            # architectures (MP/MT) keep their context busy until this
            # completes because the release happens after transmission;
            # event-driven architectures hold nothing beyond the CPU bursts
            # already accounted for.
            wire_bytes = size + RESPONSE_HEADER_BYTES
            yield from self.network.transmit(wire_bytes)
        finally:
            self.release_context(token)

        self.metrics.record(
            self.env.now,
            size + RESPONSE_HEADER_BYTES,
            self.env.now - start,
            from_disk=from_disk,
        )
        return size + RESPONSE_HEADER_BYTES, from_disk

    # -- cost assembly ------------------------------------------------------------------------

    def _select_amortization(self) -> float:
        """How many ready events a select/poll wakeup reports on average.

        More concurrent connections mean more completed I/O events per
        wakeup, amortizing the notification overhead — the "aggregation
        effect" the paper uses to explain the initial performance rise as
        clients are added (Section 6.4).
        """
        return min(4.0, max(1.0, self.num_connections / 16.0))

    def watched_descriptors(self) -> int:
        """Descriptors one event wait covers (the stateless-scan cost driver).

        An event-driven process watches every open connection in a single
        ``select``/``poll``/``epoll`` call; worker-pool architectures
        divide the connections among their workers, so each blocking
        context waits on only its own share (with persistent connections
        and many clients, that is about one descriptor per worker).
        """
        if self.uses_worker_pool:
            return max(1, self.num_connections // max(1, self.config.num_workers))
        return max(1, self.num_connections)

    def _request_cpu_time(self, outcome: AppCacheOutcome, keep_alive: bool) -> float:
        p = self.platform
        wakeup = p.event_wakeup_cost(self.config.io_backend, self.watched_descriptors())
        total = p.cost_parse + wakeup / self._select_amortization()
        if not keep_alive:
            total += p.cost_accept
        total += p.cost_pathname_hit if outcome.pathname_hit else p.cost_pathname_miss
        total += p.cost_header_hit if outcome.header_hit else p.cost_header_build
        total += p.cost_mmap_hit if outcome.mmap_hit else p.cost_mmap_miss
        if self.config.residency_check:
            total += p.cost_residency_check
        total += self.config.extra_per_request_cpu
        total += self.architecture_request_overhead(outcome)
        return total

    def _response_aligned(self, size: int) -> bool:
        return self.config.header_aligned

    # -- reporting ---------------------------------------------------------------------------------

    def summary(self) -> dict:
        """A snapshot of the run's metrics and resource statistics."""
        return {
            "architecture": self.architecture,
            "metrics": self.metrics.to_dict(),
            "buffer_cache_hit_rate": self.buffer_cache.hit_rate,
            "buffer_cache_capacity": self.buffer_cache.capacity_bytes,
            "disk_utilization": self.disk.utilization(),
            "nic_utilization": self.network.utilization(),
            "memory_footprint": self.memory_footprint(),
        }

"""Simulated server models for every architecture the paper evaluates.

Six models are provided, all built on the same cost substrate
(:class:`repro.sim.server_models.base.SimulatedServer`), mirroring the
paper's same-code-base methodology:

========  ==========================================================
name      model
========  ==========================================================
flash     AMPED: event-driven main loop + disk helpers (the paper's Flash)
sped      single-process event-driven, disk reads block everything
mp        one process per concurrently served request, replicated caches
mt        one thread per concurrently served request, shared caches + locks
apache    MP without application-level caches and with higher per-request cost
zeus      SPED with small-document priority and unaligned response headers
========  ==========================================================
"""

from repro.sim.server_models.base import SimServerConfig, SimulatedServer
from repro.sim.server_models.amped import AMPEDModel
from repro.sim.server_models.sped import SPEDModel
from repro.sim.server_models.mp import MPModel
from repro.sim.server_models.mt import MTModel
from repro.sim.server_models.apache import ApacheModel
from repro.sim.server_models.zeus import ZeusModel

#: Model name -> class, used by the simulation runner and experiments.
MODEL_REGISTRY = {
    "flash": AMPEDModel,
    "amped": AMPEDModel,
    "sped": SPEDModel,
    "mp": MPModel,
    "mt": MTModel,
    "apache": ApacheModel,
    "zeus": ZeusModel,
}


def create_model(name: str, *args, **kwargs) -> SimulatedServer:
    """Instantiate a simulated server model by architecture name."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise ValueError(
            f"unknown server model {name!r}; expected one of {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key](*args, **kwargs)


__all__ = [
    "SimServerConfig",
    "SimulatedServer",
    "AMPEDModel",
    "SPEDModel",
    "MPModel",
    "MTModel",
    "ApacheModel",
    "ZeusModel",
    "MODEL_REGISTRY",
    "create_model",
]

"""Simulated AMPED (Flash) server (paper Sections 3.4 and 5, Figure 5).

The main event-driven process handles every request-processing step; when a
request needs data that is not in memory, the main process instructs a
helper over IPC to perform the blocking read and learns of its completion
through ``select`` like any other I/O event.  Consequences encoded here:

* disk waits never occupy the CPU (the main loop keeps serving other
  requests), unlike SPED;
* at most ``num_helpers`` disk operations can be outstanding, so the disk
  sees a queue it can schedule (unlike SPED's single outstanding request);
* each helper dispatch costs an IPC round trip plus a process switch on the
  CPU, and every request pays the ``mincore`` residency test — the small
  overhead that makes Flash trail Flash-SPED slightly on fully cached
  workloads (Section 6.2);
* helpers add a little memory per helper, not per connection.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import Resource
from repro.sim.server_models.base import SimServerConfig, SimulatedServer


class AMPEDModel(SimulatedServer):
    """The Flash server: SPED speed on cached data, MP-like behaviour on disk."""

    architecture = "amped"
    uses_worker_pool = False

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
    ):
        from dataclasses import replace

        config = config or SimServerConfig()
        # AMPED always performs the memory-residency test before sending
        # (copied so the caller's config object is left untouched).
        config = replace(config, residency_check=True)
        super().__init__(env, platform, config, num_connections)
        self.helpers = Resource(env, capacity=self.config.num_helpers, name="helpers")
        self.helper_dispatches = 0

    def memory_footprint(self) -> int:
        return (
            self.platform.server_base_memory
            + self.platform.per_helper_memory * self.config.num_helpers
            + self.platform.per_connection_memory * self.num_connections
        )

    def disk_read(self, size: int):
        """Hand the blocking read to a helper; the main loop stays available."""
        self.helper_dispatches += 1
        # The dispatch and the completion notification cost CPU in the main
        # process (IPC round trip plus the switch to the helper process).
        yield from self.use_cpu(
            self.platform.cost_ipc_roundtrip + self.platform.cost_process_switch
        )
        helper_token = self.helpers.request()
        yield helper_token
        try:
            yield from self.disk.read(size)
        finally:
            self.helpers.release(helper_token)
        # Completion notification processed by the main loop.
        yield from self.use_cpu(self.platform.cost_ipc_roundtrip / 2)

    def summary(self) -> dict:
        data = super().summary()
        data["helper_dispatches"] = self.helper_dispatches
        return data

"""Simulated Apache-like server (the paper's external MP reference point).

Apache 1.3.1 uses the MP architecture on UNIX.  The paper attributes its
performance gap to Flash-MP "only in part [to] its MP architecture and
mostly … [to] its lack of aggressive optimizations like those used in
Flash" (Section 6.2).  The model therefore inherits the MP concurrency
structure but:

* disables the three application-level caches entirely (every request pays
  full pathname-translation, header-construction and file-access costs), and
* adds an extra per-request CPU cost representing Apache's more general,
  module-driven request processing path,
* uses a larger per-process footprint (Apache processes are bigger than the
  stripped Flash-MP workers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.server_models.base import SimServerConfig
from repro.sim.server_models.mp import MPModel

#: Extra per-request CPU (seconds) for Apache's heavier processing path,
#: expressed as a multiple of the FreeBSD base parse cost at calibration.
APACHE_EXTRA_CPU_FREEBSD = 260e-6
APACHE_EXTRA_CPU_SOLARIS = 620e-6

#: Apache worker processes are substantially larger than Flash-MP workers.
APACHE_PROCESS_MEMORY_MULTIPLIER = 2.2

#: Apache reads file data into a user buffer and writes it to the socket
#: instead of transmitting from a memory mapping, costing an extra copy of
#: every byte served.
APACHE_PER_BYTE_MULTIPLIER = 1.55


class ApacheModel(MPModel):
    """Apache v1.3.1 stand-in: MP concurrency without Flash's optimizations."""

    architecture = "apache"

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
    ):
        config = config or SimServerConfig()
        extra = (
            APACHE_EXTRA_CPU_SOLARIS
            if platform.name == "solaris"
            else APACHE_EXTRA_CPU_FREEBSD
        )
        config = replace(
            config,
            app_caches=config.app_caches.disabled(),
            extra_per_request_cpu=config.extra_per_request_cpu + extra,
            per_byte_multiplier=config.per_byte_multiplier * APACHE_PER_BYTE_MULTIPLIER,
        )
        platform = platform.scaled(
            per_process_memory=int(
                platform.per_process_memory * APACHE_PROCESS_MEMORY_MULTIPLIER
            )
        )
        super().__init__(env, platform, config, num_connections)

"""Simulated MT server (paper Section 3.2, Figure 3).

Multiple kernel threads share one address space; each thread carries one
request through all its steps.  Shared caches avoid MP's replication but
require synchronization on every access, and each blocking operation incurs
thread switches.  Memory cost is one stack per thread — far less than a
process, but it grows with the number of concurrently served requests,
which is what degrades MT gradually in the many-connection experiment
(Figure 12).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import Resource
from repro.sim.server_models.base import SimServerConfig, SimulatedServer


class MTModel(SimulatedServer):
    """Flash-MT: shared state with locks, a thread per active request."""

    architecture = "mt"
    uses_worker_pool = True

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
    ):
        super().__init__(env, platform, config, num_connections)

    @property
    def effective_threads(self) -> int:
        """Number of threads the server must maintain.

        With persistent connections each connection pins a thread for its
        lifetime, so the thread count follows the connection count; with
        per-request connections the configured pool size bounds it.
        """
        if self.config.persistent_connections:
            return max(self.config.num_workers, self.num_connections)
        return self.config.num_workers

    def memory_footprint(self) -> int:
        return (
            self.platform.server_base_memory
            + self.platform.per_thread_memory * self.effective_threads
            + self.platform.per_connection_memory * self.num_connections
        )

    def _make_worker_pool(self) -> Resource:
        return Resource(self.env, capacity=self.effective_threads, name="mt-threads")

    def architecture_request_overhead(self, outcome) -> float:
        # Synchronization on the shared caches plus at least one scheduling
        # round trip per request (the thread blocks on network reads/writes).
        # The scheduling term grows with the number of threads the kernel
        # must manage — the "per-thread switching and space overhead" behind
        # MT's gradual decline with many concurrent connections (Figure 12).
        scheduling = self.platform.cost_thread_switch * (2 + self.effective_threads / 128)
        return self.platform.cost_synchronization + scheduling

    def blocking_switch_cost(self) -> float:
        return self.platform.cost_thread_switch

"""Simulated MP server (paper Section 3.1, Figure 2).

One process per concurrently served request.  Processes never share state,
so there is no synchronization — but the application-level caches are
replicated per process and therefore configured much smaller (Section 6),
the per-process memory overhead is substantial and grows with concurrency,
and every blocking operation implies a full process context switch.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.appcache import SimulatedAppCaches
from repro.sim.engine import Environment
from repro.sim.platform import PlatformProfile
from repro.sim.resources import Resource
from repro.sim.server_models.base import SimServerConfig, SimulatedServer


class MPModel(SimulatedServer):
    """Flash-MP: no shared state, replicated caches, heavyweight contexts."""

    architecture = "mp"
    uses_worker_pool = True

    def __init__(
        self,
        env: Environment,
        platform: PlatformProfile,
        config: Optional[SimServerConfig] = None,
        num_connections: int = 64,
    ):
        super().__init__(env, platform, config, num_connections)

    @property
    def effective_processes(self) -> int:
        """Number of server processes the configuration implies.

        With persistent connections every connection occupies a process
        (the process cannot accept a new request while its connection is
        open), so the process count follows the connection count; otherwise
        the configured pool size applies.
        """
        if self.config.persistent_connections:
            return max(self.config.num_workers, self.num_connections)
        return self.config.num_workers

    def memory_footprint(self) -> int:
        return (
            self.platform.server_base_memory
            + self.platform.per_process_memory * self.effective_processes
        )

    def _make_worker_pool(self) -> Resource:
        return Resource(self.env, capacity=self.effective_processes, name="mp-processes")

    def _make_app_caches(self) -> list[SimulatedAppCaches]:
        # Replicated, per-process caches: each is a scaled-down copy
        # ("the caches in an MP server have to be configured smaller since
        # they are replicated in each process", Section 6).
        per_process = self.config.app_caches.per_process(self.effective_processes)
        return [SimulatedAppCaches(per_process) for _ in range(self.effective_processes)]

    def app_cache_lookup(self, worker_index: int, file_id, size: int):
        caches = self._app_caches
        return caches[worker_index % len(caches)].lookup(file_id, size)

    def architecture_request_overhead(self, outcome) -> float:
        # At least two full process switches per request (the process blocks
        # on the socket read and again on the write), with no lock costs.
        # As with MT, the scheduling term grows with the number of processes
        # the kernel juggles, but processes are heavier than threads.
        return self.platform.cost_process_switch * (2 + self.effective_processes / 128)

    def blocking_switch_cost(self) -> float:
        return self.platform.cost_process_switch

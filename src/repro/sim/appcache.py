"""Simulated application-level caches (the Section 5 optimizations).

The functional layer implements the pathname-translation, response-header
and mapped-file caches for real; the simulation layer only needs their
*performance effect*: whether a given request pays the miss cost or the hit
cost for each of the three per-request operations.  This module tracks the
three caches as LRU structures over the workload's file identifiers, with
the same capacity knobs as the real configuration, so hit rates respond to
workload locality and to the per-process cache splitting of the MP model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import LRUCache


@dataclass
class AppCacheConfig:
    """Capacities and switches for the simulated application caches.

    The default values match the paper's evaluation configuration for the
    full Flash server; :meth:`per_process` derives the smaller per-process
    configuration used by each Flash-MP worker.
    """

    enable_pathname: bool = True
    enable_header: bool = True
    enable_mmap: bool = True
    pathname_entries: int = 6000
    header_entries: int = 6000
    mmap_bytes: int = 32 * 1024 * 1024

    def per_process(self, processes: int) -> "AppCacheConfig":
        """The per-process variant (caches are replicated and must shrink)."""
        if processes < 1:
            raise ValueError("processes must be at least 1")
        entry_scale = max(1, round(processes / 3.2))
        byte_scale = max(1, processes // 4)
        return AppCacheConfig(
            enable_pathname=self.enable_pathname,
            enable_header=self.enable_header,
            enable_mmap=self.enable_mmap,
            pathname_entries=max(16, self.pathname_entries // entry_scale),
            header_entries=max(16, self.header_entries // entry_scale),
            mmap_bytes=max(64 * 1024, self.mmap_bytes // byte_scale),
        )

    def disabled(self) -> "AppCacheConfig":
        """A variant with every application-level cache turned off."""
        return AppCacheConfig(
            enable_pathname=False, enable_header=False, enable_mmap=False,
            pathname_entries=self.pathname_entries,
            header_entries=self.header_entries,
            mmap_bytes=self.mmap_bytes,
        )


@dataclass
class AppCacheOutcome:
    """Which of the three per-request operations hit their cache."""

    pathname_hit: bool
    header_hit: bool
    mmap_hit: bool


class SimulatedAppCaches:
    """Tracks the three application caches for one server process.

    The SPED, AMPED and MT models share a single instance; the MP model
    creates one per worker process (replication), constructed from
    :meth:`AppCacheConfig.per_process`.
    """

    def __init__(self, config: AppCacheConfig):
        self.config = config
        self._pathname = LRUCache(max_entries=config.pathname_entries)
        self._header = LRUCache(max_entries=config.header_entries)
        self._mmap = LRUCache(max_cost=float(config.mmap_bytes), cost_fn=lambda s: float(s))

    def lookup(self, file_id, size: int) -> AppCacheOutcome:
        """Record one request for ``file_id`` and report which caches hit.

        Disabled caches always miss (their cost is paid on every request),
        which is how the Figure 11 optimization-breakdown variants are
        simulated.
        """
        pathname_hit = False
        if self.config.enable_pathname:
            pathname_hit = self._pathname.get(file_id) is not None
            self._pathname.put(file_id, True)

        header_hit = False
        if self.config.enable_header:
            header_hit = self._header.get(file_id) is not None
            self._header.put(file_id, True)

        mmap_hit = False
        if self.config.enable_mmap:
            mmap_hit = self._mmap.get(file_id) is not None
            self._mmap.put(file_id, size)

        return AppCacheOutcome(
            pathname_hit=pathname_hit, header_hit=header_hit, mmap_hit=mmap_hit
        )

    def stats(self) -> dict:
        """Hit/miss counters for each cache."""
        return {
            "pathname": {"hits": self._pathname.hits, "misses": self._pathname.misses},
            "header": {"hits": self._header.hits, "misses": self._header.misses},
            "mmap": {"hits": self._mmap.hits, "misses": self._mmap.misses},
        }
